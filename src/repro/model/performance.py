"""The performance model: stage analysis and bottleneck identification.

Implements the paper's Section 3 methodology:

* estimate instruction / shared / global time per synchronization stage;
* with one block per SM, stages serialize: total time is the sum of
  per-stage bottlenecks, and each stage gets its own bottleneck verdict;
* with multiple resident blocks, stages overlap across blocks: component
  times sum across stages and the whole program has a single bottleneck
  (the largest component total);
* non-bottleneck time is assumed hidden by overlap, which
  "will under-estimate the total execution time when there are
  insufficient warps and scarce independent instructions" -- the known
  bias the paper reports as ~14% on dense matrix multiply.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.arch.occupancy import KernelResources, Occupancy, compute_occupancy
from repro.arch.specs import GpuSpec, GTX285
from repro.micro.calibration import CalibrationTables, default_tables
from repro.model.components import ComponentModels, ComponentTimes, ZERO_TIMES
from repro.model.extractor import (
    ModelInputs,
    StageInputs,
    extract_inputs,
)
from repro.model.report import PerformanceReport, StageAnalysis, diagnose
from repro.sim.functional import LaunchConfig
from repro.sim.trace import KernelTrace


@dataclass(frozen=True)
class AnalysisContext:
    """What a full analysis needs besides the trace."""

    launch: LaunchConfig
    resources: KernelResources
    occupancy: Occupancy


class PerformanceModel:
    """Analyze dynamic traces into quantitative performance reports."""

    def __init__(
        self,
        tables: CalibrationTables | None = None,
        spec: GpuSpec = GTX285,
    ) -> None:
        self.spec = spec
        self.tables = tables if tables is not None else default_tables()
        self.models = ComponentModels(self.tables, spec)

    # ------------------------------------------------------------------
    def context(
        self, launch: LaunchConfig, resources: KernelResources
    ) -> AnalysisContext:
        occupancy = compute_occupancy(self.spec, resources)
        return AnalysisContext(launch, resources, occupancy)

    def extract(
        self,
        trace: KernelTrace,
        launch: LaunchConfig,
        resources: KernelResources,
        granularity: int | None = None,
    ) -> ModelInputs:
        """Model inputs for a trace.

        ``granularity=None`` uses the spec's minimum transaction
        segment (32 B on the GT200 baseline), so registry specs with
        coarser-only transactions are modelled at their own
        granularity.
        """
        if granularity is None:
            granularity = self.spec.memory.min_segment_bytes
        occupancy = compute_occupancy(self.spec, resources)
        return extract_inputs(
            trace, launch, occupancy, self.spec, granularity=granularity
        )

    def analyze(
        self,
        trace: KernelTrace,
        launch: LaunchConfig,
        resources: KernelResources,
        granularity: int | None = None,
    ) -> PerformanceReport:
        """Full pipeline: extract inputs, then analyze them."""
        report = self.analyze_inputs(
            self.extract(trace, launch, resources, granularity)
        )
        engine_stats = getattr(trace, "engine_stats", None)
        if engine_stats is not None:
            report = dataclasses.replace(report, engine_stats=engine_stats)
        return report

    def analyze_inputs(self, inputs: ModelInputs) -> PerformanceReport:
        """Component times, per-stage and whole-program bottlenecks."""
        stage_analyses: list[StageAnalysis] = []
        component_totals = ZERO_TIMES
        for stage in inputs.stages:
            times = self.models.stage_times(stage, inputs)
            warps = inputs.active_warps_per_sm(stage, self.spec.sm.max_warps)
            stage_analyses.append(
                StageAnalysis(
                    index=stage.index,
                    times=times,
                    bottleneck=times.bottleneck,
                    active_warps=warps,
                    inputs=stage,
                )
            )
            component_totals = component_totals + times

        if inputs.serialized:
            # One block per SM: stages serialize; the program's time is
            # the sum of per-stage bottlenecks, and the program-level
            # bottleneck is the component that contributes most of it
            # (the paper's "CR is dominated by shared memory access").
            predicted = sum(s.times.bottleneck_time for s in stage_analyses)
            contributions = {"instruction": 0.0, "shared": 0.0, "global": 0.0}
            for stage in stage_analyses:
                contributions[stage.bottleneck] += stage.times.bottleneck_time
            bottleneck = max(contributions, key=contributions.get)
        else:
            predicted = component_totals.bottleneck_time
            bottleneck = component_totals.bottleneck

        return PerformanceReport(
            stages=tuple(stage_analyses),
            serialized=inputs.serialized,
            component_totals=component_totals,
            predicted_seconds=predicted,
            bottleneck=bottleneck,
            inputs=inputs,
            diagnostics=diagnose(
                inputs, component_totals, bottleneck, self.tables, self.spec
            ),
        )
