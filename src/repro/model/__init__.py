"""The quantitative GPU performance model (the paper's contribution)."""

from repro.model.components import (
    COMPONENTS,
    ComponentModels,
    ComponentTimes,
    GlobalMemoryModel,
    InstructionPipelineModel,
    SharedMemoryModel,
)
from repro.model.crossval import (
    CrossPrediction,
    CrossValReport,
    cross_validate,
    transfer_tables,
)
from repro.model.curves import ThroughputCurve, instruction_curves, shared_curve
from repro.model.extractor import (
    ModelInputs,
    StageInputs,
    extract_inputs,
    with_blocks_per_sm,
    with_granularity,
    without_bank_conflicts,
)
from repro.model.performance import AnalysisContext, PerformanceModel
from repro.model.report import (
    Diagnostics,
    PerformanceReport,
    StageAnalysis,
    diagnose,
)
from repro.model.whatif import (
    WhatIfResult,
    predict_with_early_resource_release,
    predict_with_granularity,
    predict_with_max_blocks,
    predict_with_resources,
    predict_without_bank_conflicts,
)

__all__ = [
    "AnalysisContext",
    "COMPONENTS",
    "ComponentModels",
    "ComponentTimes",
    "CrossPrediction",
    "CrossValReport",
    "Diagnostics",
    "GlobalMemoryModel",
    "InstructionPipelineModel",
    "ModelInputs",
    "PerformanceModel",
    "PerformanceReport",
    "SharedMemoryModel",
    "StageAnalysis",
    "StageInputs",
    "ThroughputCurve",
    "WhatIfResult",
    "cross_validate",
    "diagnose",
    "extract_inputs",
    "instruction_curves",
    "predict_with_early_resource_release",
    "predict_with_granularity",
    "predict_with_max_blocks",
    "predict_with_resources",
    "predict_without_bank_conflicts",
    "shared_curve",
    "transfer_tables",
    "with_blocks_per_sm",
    "with_granularity",
    "without_bank_conflicts",
]
