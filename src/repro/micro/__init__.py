"""Microbenchmarks: instruction pipeline, shared memory, global memory."""

from repro.micro.cache import (
    default_cache_dir,
    default_calibration_path,
    default_trace_cache_dir,
    load_or_calibrate,
    spec_fingerprint,
)
from repro.micro.calibration import CalibrationTables, calibrate, default_tables
from repro.micro.codegen import (
    buffer_words_for_stream,
    global_stream_benchmark,
    instruction_benchmark,
    shared_copy_benchmark,
)
from repro.micro.globalmem import (
    FIG3_CONFIGS,
    GlobalBenchmarkResult,
    run_synthetic,
    sweep_blocks,
)
from repro.micro.instruction import (
    DEFAULT_WARP_COUNTS,
    InstructionThroughputTable,
    measure_instruction_throughput,
    peak_table,
)
from repro.micro.runner import (
    blocks_for_warps,
    single_warp_stream,
    sm_resident_blocks,
    synthetic_block,
)
from repro.micro.shared import (
    SHARED_TRANSACTION_BYTES,
    SharedBandwidthTable,
    measure_shared_bandwidth,
)

__all__ = [
    "CalibrationTables",
    "DEFAULT_WARP_COUNTS",
    "FIG3_CONFIGS",
    "GlobalBenchmarkResult",
    "InstructionThroughputTable",
    "SHARED_TRANSACTION_BYTES",
    "SharedBandwidthTable",
    "blocks_for_warps",
    "buffer_words_for_stream",
    "calibrate",
    "default_cache_dir",
    "default_calibration_path",
    "default_tables",
    "default_trace_cache_dir",
    "global_stream_benchmark",
    "load_or_calibrate",
    "spec_fingerprint",
    "instruction_benchmark",
    "measure_instruction_throughput",
    "measure_shared_bandwidth",
    "peak_table",
    "run_synthetic",
    "shared_copy_benchmark",
    "single_warp_stream",
    "sm_resident_blocks",
    "sweep_blocks",
    "synthetic_block",
]
