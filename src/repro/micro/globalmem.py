"""Global-memory bandwidth microbenchmarks (Section 4.3, Fig. 3).

The paper found global bandwidth too complex for a closed-form model and
instead estimates a program's global component by running a *synthetic
benchmark of the same configuration* (number of blocks, block size,
memory transactions per thread).  This module is that synthetic
benchmark: it measures bandwidth for one configuration, and sweeps the
configuration grid that regenerates Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.gpu import HardwareGpu
from repro.micro.codegen import buffer_words_for_stream, global_stream_benchmark
from repro.micro.runner import single_warp_stream, synthetic_block
from repro.sim.memory import GlobalMemory

#: Fig. 3's legend: (threads per block, memory transactions per thread).
FIG3_CONFIGS = (
    (512, 256),
    (256, 256),
    (256, 128),
    (128, 256),
    (128, 128),
    (64, 256),
    (512, 2),
    (256, 2),
)


@dataclass(frozen=True)
class GlobalBenchmarkResult:
    """One synthetic-benchmark measurement."""

    num_blocks: int
    threads_per_block: int
    loads_per_thread: int
    seconds: float
    useful_bytes: int
    transactions: int
    transferred_bytes: int

    @property
    def bandwidth(self) -> float:
        """Useful bytes per second (what Fig. 3 plots)."""
        return self.useful_bytes / self.seconds

    @property
    def byte_rate(self) -> float:
        """Transferred (transaction) bytes per second -- the model's rate."""
        return self.transferred_bytes / self.seconds


#: Cache of functional-simulation streams: the event sequence depends
#: only on (stride, loads per thread), not on grid shape, so Fig. 3's
#: 8 x 60 sweep re-simulates each kernel once.
_STREAM_CACHE: dict[tuple[int, int], list] = {}


def _stream_for(stride_words: int, loads_per_thread: int) -> list:
    key = (stride_words, loads_per_thread)
    stream = _STREAM_CACHE.get(key)
    if stream is None:
        kernel = global_stream_benchmark(stride_words=stride_words)
        gmem = GlobalMemory()
        words = buffer_words_for_stream(32, loads_per_thread, stride_words)
        base = gmem.alloc(words, "stream")
        stream = single_warp_stream(
            kernel, {"buf": base, "iters": loads_per_thread}, gmem=gmem
        )
        _STREAM_CACHE[key] = stream
    return stream


def run_synthetic(
    num_blocks: int,
    threads_per_block: int,
    loads_per_thread: int,
    gpu: HardwareGpu | None = None,
    stride_words: int = 1,
) -> GlobalBenchmarkResult:
    """Measure one (blocks, threads, transactions/thread) configuration."""
    gpu = gpu or HardwareGpu()
    spec = gpu.spec
    stream = _stream_for(stride_words, loads_per_thread)

    warps_per_block = -(-threads_per_block // 32)
    trace = synthetic_block(stream, warps_per_block)
    # The streaming kernel is tiny: the block-per-SM ceiling (8) binds.
    resident = min(8, max(1, 32 // warps_per_block))
    measured = gpu.measure(
        trace, num_blocks=num_blocks, resident_per_sm=resident
    )

    transactions = sum(
        e[2] for e in stream if e[0] in (3, 4)
    ) * warps_per_block * num_blocks
    transferred = sum(
        e[3] for e in stream if e[0] in (3, 4)
    ) * warps_per_block * num_blocks
    useful = loads_per_thread * threads_per_block * num_blocks * 4
    return GlobalBenchmarkResult(
        num_blocks=num_blocks,
        threads_per_block=threads_per_block,
        loads_per_thread=loads_per_thread,
        seconds=measured.seconds,
        useful_bytes=useful,
        transactions=transactions,
        transferred_bytes=transferred,
    )


def sweep_blocks(
    threads_per_block: int,
    loads_per_thread: int,
    block_counts: tuple[int, ...],
    gpu: HardwareGpu | None = None,
) -> list[GlobalBenchmarkResult]:
    """One Fig. 3 series: bandwidth against the number of blocks."""
    gpu = gpu or HardwareGpu()
    return [
        run_synthetic(blocks, threads_per_block, loads_per_thread, gpu)
        for blocks in block_counts
    ]
