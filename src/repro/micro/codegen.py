"""Synthetic benchmark kernels (the paper's CUBIN generator analogue).

The paper generates native-code microbenchmarks directly, bypassing the
compiler, so the GPU executes exactly the intended instruction mix.
These builders do the same with :class:`KernelBuilder`: a repeated
single-type instruction chain (instruction pipeline), a shared-memory
region copy (shared bandwidth), and a strided global-memory streamer
(global bandwidth), each with the canonical 3-instruction loop overhead
a compiler would emit.
"""

from __future__ import annotations

from repro.errors import IsaError
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import Imm
from repro.isa.program import Kernel

#: Words reserved per region in the shared-copy benchmark (fits any
#: block size up to 512 threads with the unrolled offsets).
_SHARED_REGION_WORDS = 640


def instruction_benchmark(type_name: str, unroll: int = 16) -> Kernel:
    """A kernel that repeats one instruction type in a dependent chain.

    The chain (``a = op(a, b)``) defeats instruction-level parallelism,
    so the measured throughput curve isolates how many *warps* are
    needed to cover the pipeline latency (paper Section 4.1).
    """
    if unroll < 1:
        raise IsaError("unroll must be at least 1")
    ops = {
        "I": lambda b, a, c: b.fmul(a, a, c),
        "II": lambda b, a, c: b.fmad(a, a, c, a),
        "III": lambda b, a, c: b.rcp(a, a),
        "IV": lambda b, a, c: b.dadd(a, a, c),
    }
    if type_name not in ops:
        raise IsaError(f"unknown instruction type {type_name!r}")
    b = KernelBuilder(f"instr_{type_name.lower()}", params=("iters",))
    a = b.reg()
    c = b.reg()
    b.mov(a, b.tid)
    b.mov(c, Imm(0.999993))
    emit = ops[type_name]
    with b.counted_loop(b.param("iters")):
        for _ in range(unroll):
            emit(b, a, c)
    # Keep the chain live so a real compiler could not dead-code it.
    sink = b.reg()
    b.fadd(sink, a, c)
    b.exit()
    return b.build()


def shared_copy_benchmark(unroll: int = 8) -> Kernel:
    """Move data between two shared-memory regions (paper Section 4.2).

    Every thread copies ``unroll`` words per iteration, conflict-free
    (lane ``i`` touches word ``i`` of each region).  Loads are address-
    independent across the unrolled body, so modest memory-level
    parallelism is available, as in the paper's benchmark.
    """
    if not 1 <= unroll <= 8:
        raise IsaError("shared-copy unroll must be in [1, 8]")
    b = KernelBuilder("shared_copy", params=("iters",))
    src_base = b.alloc_shared(_SHARED_REGION_WORDS)
    dst_base = b.alloc_shared(_SHARED_REGION_WORDS)
    src = b.reg()
    dst = b.reg()
    b.ishl(src, b.tid, Imm(2))
    b.iadd(dst, src, Imm(dst_base))
    b.iadd(src, src, Imm(src_base))
    values = b.regs(min(unroll, 4))
    with b.counted_loop(b.param("iters")):
        for k in range(unroll):
            v = values[k % len(values)]
            b.lds(v, src, offset=4 * k)
            b.sts(v, dst, offset=4 * k)
    b.exit()
    return b.build()


def global_stream_benchmark(stride_words: int = 1) -> Kernel:
    """Stream global memory: each thread issues one load per iteration.

    With ``stride_words == 1`` consecutive lanes read consecutive words
    (fully coalesced, the paper's synthetic benchmark).  Larger strides
    spread a half-warp over more segments to emulate poorly coalesced
    access.  The thread's pointer advances by the whole block's footprint
    each iteration ("memory transactions per thread" is the trip count,
    as in Fig. 3's legend).
    """
    if stride_words < 1:
        raise IsaError("stride must be at least 1")
    b = KernelBuilder("global_stream", params=("buf", "iters"))
    addr = b.reg()
    step = b.reg()
    b.imad(addr, b.tid, Imm(4 * stride_words), b.param("buf"))
    b.imul(step, b.ntid, Imm(4 * stride_words))
    v = b.reg()
    with b.counted_loop(b.param("iters")):
        b.ldg(v, addr)
        b.iadd(addr, addr, step)
    b.exit()
    return b.build()


def buffer_words_for_stream(
    threads: int, iterations: int, stride_words: int = 1
) -> int:
    """Global-buffer size (words) the streamer touches."""
    return threads * stride_words * (iterations + 1)
