"""Plumbing shared by the microbenchmark sweeps.

A microbenchmark's event stream is identical for every warp (same code,
same coalescing/bank behaviour), so we functionally simulate a single
warp once and replicate its stream across the requested warp count --
cheap, and bit-identical to simulating each warp (asserted in tests).
"""

from __future__ import annotations

from repro.errors import CalibrationError
from repro.isa.program import Kernel
from repro.sim.functional import FunctionalSimulator, LaunchConfig
from repro.sim.memory import GlobalMemory
from repro.sim.trace import BlockTrace


def single_warp_stream(
    kernel: Kernel,
    params: dict[str, float],
    gmem: GlobalMemory | None = None,
    block_threads: int = 32,
) -> list:
    """Functionally simulate one warp; return its event stream."""
    simulator = FunctionalSimulator(kernel, gmem=gmem)
    launch = LaunchConfig(
        grid=(1, 1), block_threads=block_threads, params=params
    )
    trace = simulator.run_block(launch, (0, 0))
    return trace.warp_streams[0]


def blocks_for_warps(warps: int, max_warps_per_block: int = 16) -> list[int]:
    """Split a per-SM warp count into resident blocks (<= 8 of <= 16).

    Mirrors how the paper "chooses the size of blocks and the number of
    blocks" to control resident warps per SM.
    """
    if warps < 1:
        raise CalibrationError("warp count must be at least 1")
    if warps > 8 * max_warps_per_block:
        raise CalibrationError(f"cannot place {warps} warps on one SM")
    per_block = max(1, -(-warps // 8))
    per_block = min(per_block, max_warps_per_block)
    blocks: list[int] = []
    remaining = warps
    while remaining > 0:
        take = min(per_block, remaining)
        blocks.append(take)
        remaining -= take
    return blocks


def synthetic_block(stream: list, warps: int) -> BlockTrace:
    """Wrap a replicated warp stream as a BlockTrace for the hw sim."""
    return BlockTrace(
        block=(0, 0), stages=[], warp_streams=[stream] * warps
    )


def sm_resident_blocks(stream: list, warps: int) -> list[list[list]]:
    """Per-SM resident block set realizing ``warps`` warps."""
    return [[stream] * k for k in blocks_for_warps(warps)]
