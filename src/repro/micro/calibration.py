"""Calibration tables: the microbenchmark observations the model uses.

Running all microbenchmarks once yields the throughput curves of Fig. 2
and a memoized synthetic-benchmark oracle for global memory.  Tables can
be saved/loaded as JSON so benchmark harnesses do not re-calibrate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import CalibrationError
from repro.hw.gpu import HardwareGpu
from repro.micro.globalmem import GlobalBenchmarkResult, run_synthetic
from repro.micro.instruction import (
    InstructionThroughputTable,
    measure_instruction_throughput,
    warp_counts_for,
)
from repro.micro.shared import SharedBandwidthTable, measure_shared_bandwidth
from repro.util import spec_fingerprint

#: Bump when the on-disk calibration file schema changes.
CALIBRATION_CACHE_VERSION = 1


@dataclass
class CalibrationTables:
    """Everything the performance model knows about the hardware."""

    instruction: InstructionThroughputTable
    shared: SharedBandwidthTable
    gpu: HardwareGpu = field(repr=False, default=None)
    _global_cache: dict[tuple[int, int, int], GlobalBenchmarkResult] = field(
        default_factory=dict, repr=False
    )

    def global_benchmark(
        self, num_blocks: int, threads_per_block: int, loads_per_thread: int
    ) -> GlobalBenchmarkResult:
        """Synthetic global benchmark of a configuration (memoized)."""
        if self.gpu is None:
            raise CalibrationError(
                "calibration tables were loaded without a hardware handle; "
                "global benchmarks cannot be run"
            )
        key = (num_blocks, threads_per_block, loads_per_thread)
        result = self._global_cache.get(key)
        if result is None:
            result = run_synthetic(
                num_blocks, threads_per_block, loads_per_thread, self.gpu
            )
            self._global_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        payload = {
            "warp_counts": list(self.instruction.warp_counts),
            "instruction": {
                name: list(values)
                for name, values in self.instruction.throughput.items()
            },
            "shared_warp_counts": list(self.shared.warp_counts),
            "shared": list(self.shared.bandwidth),
            "global": [
                {
                    "key": list(key),
                    "seconds": r.seconds,
                    "useful_bytes": r.useful_bytes,
                    "transactions": r.transactions,
                    "transferred_bytes": r.transferred_bytes,
                }
                for key, r in self._global_cache.items()
            ],
        }
        return json.dumps(payload, indent=2)

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def from_json(
        cls, text: str, gpu: HardwareGpu | None = None
    ) -> "CalibrationTables":
        try:
            payload = json.loads(text)
            if isinstance(payload, dict) and "warp_counts" not in payload:
                # Spec-keyed cache files (repro.micro.cache) wrap the
                # tables in {version, spec, sweep, tables}; accept them
                # so --calibration can point at the default cache, but
                # only when the schema version matches and the tables
                # were measured for the spec being modelled.
                if payload.get("version") != CALIBRATION_CACHE_VERSION:
                    raise CalibrationError(
                        "calibration cache file has schema version "
                        f"{payload.get('version')!r}, expected "
                        f"{CALIBRATION_CACHE_VERSION}; recalibrate"
                    )
                if gpu is not None and payload.get(
                    "spec"
                ) != spec_fingerprint(gpu.spec):
                    raise CalibrationError(
                        "calibration cache file was measured for a "
                        "different architecture spec; recalibrate or "
                        "pass tables saved with `repro calibrate`"
                    )
                payload = payload["tables"]
            instruction = InstructionThroughputTable(
                tuple(payload["warp_counts"]),
                {k: tuple(v) for k, v in payload["instruction"].items()},
            )
            shared = SharedBandwidthTable(
                tuple(payload["shared_warp_counts"]), tuple(payload["shared"])
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CalibrationError(f"malformed calibration JSON: {exc}") from exc
        tables = cls(instruction=instruction, shared=shared, gpu=gpu)
        for entry in payload.get("global", ()):
            key = tuple(entry["key"])
            tables._global_cache[key] = GlobalBenchmarkResult(
                num_blocks=key[0],
                threads_per_block=key[1],
                loads_per_thread=key[2],
                seconds=entry["seconds"],
                useful_bytes=entry["useful_bytes"],
                transactions=entry["transactions"],
                transferred_bytes=entry["transferred_bytes"],
            )
        return tables

    @classmethod
    def load(cls, path: str | Path, gpu: HardwareGpu | None = None):
        return cls.from_json(Path(path).read_text(), gpu=gpu)


_DEFAULT_TABLES: dict[int, CalibrationTables] = {}


def calibrate(
    gpu: HardwareGpu | None = None,
    warp_counts: tuple[int, ...] | None = None,
    iterations: int = 60,
) -> CalibrationTables:
    """Run the full microbenchmark suite against a hardware instance.

    ``warp_counts=None`` resolves to the spec's grid
    (:func:`repro.micro.instruction.warp_counts_for`): the GT200
    default sweep for the baseline, extended sample points for
    registered wide-warp-count generations.
    """
    gpu = gpu or HardwareGpu()
    if warp_counts is None:
        warp_counts = warp_counts_for(gpu.spec)
    instruction = measure_instruction_throughput(
        gpu, warp_counts=warp_counts, iterations=iterations
    )
    shared = measure_shared_bandwidth(
        gpu, warp_counts=warp_counts, iterations=iterations
    )
    return CalibrationTables(instruction=instruction, shared=shared, gpu=gpu)


def default_tables(gpu: HardwareGpu | None = None) -> CalibrationTables:
    """Process-wide cached calibration for the default hardware."""
    gpu = gpu or HardwareGpu()
    key = id(gpu.config) ^ id(gpu.spec)
    if key not in _DEFAULT_TABLES:
        _DEFAULT_TABLES[key] = calibrate(gpu)
    return _DEFAULT_TABLES[key]
