"""Instruction-pipeline microbenchmarks (paper Section 4.1, Fig. 2 left).

Measures warp-instruction throughput of each instruction type (Table 1)
as a function of resident warps per SM by running single-type dependent
chains on the hardware simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.specs import GpuSpec, GTX285
from repro.hw.gpu import HardwareGpu
from repro.micro.codegen import instruction_benchmark
from repro.micro.runner import single_warp_stream, sm_resident_blocks
from repro.sim.trace import TYPE_NAMES

#: Default warp grid: dense at the knee, sparse near the ceiling.
DEFAULT_WARP_COUNTS = (1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 28, 32)

#: Sparse extension points for wide-warp-count architectures.
_EXTENDED_WARP_COUNTS = (40, 48, 56, 64)


def warp_counts_for(spec: GpuSpec) -> tuple[int, ...]:
    """Calibration warp grid for an architecture spec.

    The GT200 grid tops out at its 32-warp ceiling; registry specs with
    wider SMs (``max_warps`` of 48 or 64) get sparse extension points
    so the model's throughput curves cover the extra parallelism
    instead of clamping at the last GT200 sample.
    """
    counts = tuple(w for w in DEFAULT_WARP_COUNTS if w <= spec.sm.max_warps)
    counts += tuple(
        w
        for w in _EXTENDED_WARP_COUNTS
        if DEFAULT_WARP_COUNTS[-1] < w <= spec.sm.max_warps
    )
    return counts


@dataclass(frozen=True)
class InstructionThroughputTable:
    """GI/s (whole GPU, warp-instructions) per type and warp count."""

    warp_counts: tuple[int, ...]
    throughput: dict[str, tuple[float, ...]]  # type -> GI/s per warp count

    def at(self, type_name: str, warps: int) -> float:
        """Throughput at an exactly-measured warp count."""
        index = self.warp_counts.index(warps)
        return self.throughput[type_name][index]

    def saturated(self, type_name: str) -> float:
        return max(self.throughput[type_name])

    def saturation_warps(self, type_name: str, fraction: float = 0.95) -> int:
        """Smallest measured warp count reaching ``fraction`` of peak."""
        ceiling = self.saturated(type_name)
        for warps, value in zip(self.warp_counts, self.throughput[type_name]):
            if value >= fraction * ceiling:
                return warps
        return self.warp_counts[-1]


def measure_instruction_throughput(
    gpu: HardwareGpu | None = None,
    warp_counts: tuple[int, ...] = DEFAULT_WARP_COUNTS,
    types: tuple[str, ...] = TYPE_NAMES,
    iterations: int = 60,
    unroll: int = 16,
) -> InstructionThroughputTable:
    """Run the sweep of Fig. 2 (left) on the hardware simulator."""
    gpu = gpu or HardwareGpu()
    spec = gpu.spec
    table: dict[str, tuple[float, ...]] = {}
    for type_name in types:
        kernel = instruction_benchmark(type_name, unroll=unroll)
        stream = single_warp_stream(kernel, {"iters": iterations})
        series = []
        for warps in warp_counts:
            result = gpu.measure_uniform_sm(
                sm_resident_blocks(stream, warps), resident_per_sm=8
            )
            seconds = result.cycles / spec.core_clock_hz
            instructions = iterations * unroll * warps * spec.num_sms
            series.append(instructions / seconds / 1e9)
        table[type_name] = tuple(series)
    return InstructionThroughputTable(tuple(warp_counts), table)


def peak_table(spec: GpuSpec = GTX285) -> dict[str, float]:
    """Theoretical peaks per type in GI/s (paper Table 1 arithmetic)."""
    return {
        name: spec.peak_instruction_throughput(name) / 1e9 for name in TYPE_NAMES
    }
