"""Spec-keyed on-disk caching for calibration tables.

Calibration (the Fig. 2 microbenchmark sweeps) dominates CLI start-up:
tens of seconds to answer questions the analytical model then settles in
microseconds.  The tables only depend on the architecture spec and the
sweep configuration, so they are cached per spec: the baseline GT200
keeps its historical ``~/.cache/repro/calibration.json`` path, every
other spec -- registered generations (:mod:`repro.arch.registry`) and
ad-hoc what-if specs alike -- gets its own
``calibration-<name-or-fingerprint>.json`` file, so sweeping the
registry (``repro specs crossval``) never thrashes one shared file.
Override the cache root with ``REPRO_CACHE_DIR``; entries are
invalidated whenever the spec fingerprint or sweep parameters change.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.arch.registry import registered_name
from repro.arch.specs import GTX285, GpuSpec
from repro.hw.gpu import HardwareGpu
from repro.micro.calibration import (
    CALIBRATION_CACHE_VERSION,
    CalibrationTables,
    calibrate,
)
from repro.micro.instruction import warp_counts_for
from repro.util import (
    CACHE_DIR_ENV,
    atomic_write_bytes,
    spec_fingerprint,
)
from repro.util import default_cache_dir as _default_cache_root

__all__ = [
    "CACHE_DIR_ENV",
    "default_cache_dir",
    "default_calibration_path",
    "default_measure_cache_dir",
    "default_trace_cache_dir",
    "load_or_calibrate",
    "save_calibration",
]


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``.

    The resolution itself lives in :func:`repro.util.default_cache_dir`
    (shared with the tuning-profile store); this wrapper keeps the
    historical :class:`~pathlib.Path` return type.
    """
    return Path(_default_cache_root())


def default_calibration_path(spec: GpuSpec | None = None) -> Path:
    """Per-spec calibration cache file.

    The baseline (``None`` or the GT200 spec) keeps the historical
    ``calibration.json`` name; other specs are keyed by their registry
    name when registered (``calibration-fermi-like.json``) or by a
    fingerprint prefix otherwise, so distinct architectures never
    overwrite each other's tables.
    """
    if spec is None or spec_fingerprint(spec) == spec_fingerprint(GTX285):
        return default_cache_dir() / "calibration.json"
    stem = registered_name(spec) or spec_fingerprint(spec)[:12]
    return default_cache_dir() / f"calibration-{stem}.json"


def default_trace_cache_dir() -> Path:
    """Directory for the simulation engine's KernelTrace memo cache."""
    return default_cache_dir() / "traces"


def default_measure_cache_dir() -> Path:
    """Directory for the timing layer's MeasuredRun memo cache."""
    return default_cache_dir() / "measured"


def _sweep_key(warp_counts: tuple[int, ...], iterations: int) -> list:
    return [list(warp_counts), iterations]


def load_or_calibrate(
    gpu: HardwareGpu | None = None,
    path: str | os.PathLike | None = None,
    warp_counts: tuple[int, ...] | None = None,
    iterations: int = 60,
    force: bool = False,
    on_calibrate=None,
) -> CalibrationTables:
    """Return cached calibration tables, re-running microbenchmarks only
    when the cache is missing, malformed, or keyed to a different spec or
    sweep configuration.  The default ``path`` is the per-spec cache
    file (:func:`default_calibration_path`), and ``warp_counts=None``
    resolves to the spec's sweep grid, so every registered architecture
    calibrates and caches independently.  ``on_calibrate`` is invoked
    (with no args) right before an actual calibration run -- missing
    *or* invalidated cache -- so callers can surface slow-path
    progress."""
    gpu = gpu or HardwareGpu()
    if warp_counts is None:
        warp_counts = warp_counts_for(gpu.spec)
    target = (
        Path(path) if path is not None else default_calibration_path(gpu.spec)
    )
    fingerprint = spec_fingerprint(gpu.spec)
    sweep = _sweep_key(warp_counts, iterations)

    from repro import obs

    if not force:
        tables = _try_load(target, gpu, fingerprint, sweep)
        if tables is not None:
            obs.metrics.inc("cache.calibration.hits")
            return tables
    obs.metrics.inc("cache.calibration.misses")

    if on_calibrate is not None:
        on_calibrate()
    with obs.span(
        "micro.calibrate",
        spec=getattr(gpu.spec, "name", None),
        iterations=iterations,
    ):
        tables = calibrate(
            gpu, warp_counts=warp_counts, iterations=iterations
        )
    save_calibration(tables, target, fingerprint, sweep)
    obs.metrics.inc("cache.calibration.stores")
    return tables


def save_calibration(
    tables: CalibrationTables,
    path: Path,
    fingerprint: str,
    sweep: list,
) -> None:
    payload = {
        "version": CALIBRATION_CACHE_VERSION,
        "spec": fingerprint,
        "sweep": sweep,
        "tables": json.loads(tables.to_json()),
    }
    atomic_write_bytes(path, json.dumps(payload, indent=2).encode())


def _try_load(
    path: Path, gpu: HardwareGpu, fingerprint: str, sweep: list
) -> CalibrationTables | None:
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict):
        return None
    if payload.get("version") != CALIBRATION_CACHE_VERSION:
        return None
    if payload.get("spec") != fingerprint or payload.get("sweep") != sweep:
        return None
    try:
        return CalibrationTables.from_json(
            json.dumps(payload["tables"]), gpu=gpu
        )
    except Exception:
        return None
