"""Shared-memory bandwidth microbenchmark (Section 4.2, Fig. 2 right).

Measures sustained shared-memory bandwidth against resident warps per
SM.  Bandwidth is accounted in *transaction bytes* (64 B per half-warp
transaction, reads and writes both counted), which is the unit the
performance model divides by: ``time = transactions * 64 B / BW(warps)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.gpu import HardwareGpu
from repro.micro.codegen import shared_copy_benchmark
from repro.micro.instruction import DEFAULT_WARP_COUNTS
from repro.micro.runner import single_warp_stream, sm_resident_blocks
from repro.sim.functional import FunctionalSimulator, LaunchConfig

#: Bytes carried by one half-warp shared-memory transaction.
SHARED_TRANSACTION_BYTES = 64


@dataclass(frozen=True)
class SharedBandwidthTable:
    """Bytes/second (whole GPU, transaction bytes) per warp count."""

    warp_counts: tuple[int, ...]
    bandwidth: tuple[float, ...]

    def at(self, warps: int) -> float:
        return self.bandwidth[self.warp_counts.index(warps)]

    @property
    def saturated(self) -> float:
        return max(self.bandwidth)

    def saturation_warps(self, fraction: float = 0.95) -> int:
        ceiling = self.saturated
        for warps, value in zip(self.warp_counts, self.bandwidth):
            if value >= fraction * ceiling:
                return warps
        return self.warp_counts[-1]


def measure_shared_bandwidth(
    gpu: HardwareGpu | None = None,
    warp_counts: tuple[int, ...] = DEFAULT_WARP_COUNTS,
    iterations: int = 60,
    unroll: int = 8,
) -> SharedBandwidthTable:
    """Run the sweep of Fig. 2 (right) on the hardware simulator."""
    gpu = gpu or HardwareGpu()
    spec = gpu.spec
    kernel = shared_copy_benchmark(unroll=unroll)

    # One functional run gives both the stream and the exact per-warp
    # transaction count (conflict-free here, but counted, not assumed).
    simulator = FunctionalSimulator(kernel)
    launch = LaunchConfig(grid=(1, 1), block_threads=32, params={"iters": iterations})
    block = simulator.run_block(launch, (0, 0))
    stream = block.warp_streams[0]
    transactions_per_warp = block.totals.shared_transactions

    series = []
    for warps in warp_counts:
        result = gpu.measure_uniform_sm(
            sm_resident_blocks(stream, warps), resident_per_sm=8
        )
        seconds = result.cycles / spec.core_clock_hz
        total_bytes = (
            transactions_per_warp
            * warps
            * spec.num_sms
            * SHARED_TRANSACTION_BYTES
        )
        series.append(total_bytes / seconds)
    return SharedBandwidthTable(tuple(warp_counts), tuple(series))
