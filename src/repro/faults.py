"""Deterministic fault injection for the execution substrate.

The fault-tolerance machinery (pool retries, cache quarantine, shared-
memory fallbacks -- see DESIGN.md "Failure model") is only trustworthy
if every degraded path is exercised on purpose, repeatably.  This module
owns the injection points the substrate consults:

* ``on_pool_task(index, attempt)`` -- crash the worker process (the
  ``BrokenProcessPool`` path), hang it (the watchdog/timeout path), or
  raise ``KeyboardInterrupt`` (the cleanup path) when a pool task with
  the planned index runs;
* ``on_cache_read(data)`` -- corrupt the bytes of the Nth on-disk cache
  read (the quarantine path);
* ``on_cache_write(path)`` -- raise ``OSError`` on the Nth cache write
  (the fail-open store path);
* ``on_shm_attach(name)`` -- fail the Nth shared-memory arena attach in
  a worker (the pickle/serial fallback path).

A :class:`FaultPlan` is *deterministic*: faults key off stable task
indices and per-process call counters, never wall clock or PRNG state at
call time (``seed`` only parameterizes the corruption mask), so a
faulted run is exactly reproducible.  Plans activate two ways:

* programmatically -- ``with faults.injected(crash_task=0): ...`` (or
  ``install``/``clear``), which covers the caller's process and, via
  explicit plan shipping in :mod:`repro.pool`, fork *and* spawn workers;
* ``$REPRO_FAULTS`` -- e.g. ``REPRO_FAULTS="crash_task=0,hang_task=2"``
  -- which child processes inherit regardless of start method; consumed
  by the CI chaos step and the engine_smoke chaos gate.

With no plan installed and no env var set every hook is a cheap no-op;
production runs pay one module-global check per injection point.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, fields, replace

from repro.errors import ReproError

#: Environment variable carrying a fault plan (``key=value`` pairs,
#: comma-separated), e.g. ``REPRO_FAULTS="crash_task=0,corrupt_read=0"``.
FAULTS_ENV = "REPRO_FAULTS"

#: Exit status of a fault-crashed worker (distinctive in core dumps).
CRASH_EXIT_STATUS = 13


class FaultPlanError(ReproError):
    """A fault plan string or field is malformed."""


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic set of faults to inject.

    ``None`` disables an injection point.  Task-keyed faults
    (``crash_task``/``hang_task``/``interrupt_task``) fire on the pool
    task with that index; counter-keyed faults (``corrupt_read``/
    ``fail_write``/``fail_shm_attach``) fire on the Nth call of the
    corresponding hook in the current process (0-based).
    """

    #: Crash (``os._exit``) the worker executing this pool-task index.
    crash_task: int | None = None
    #: Crash only while the task's attempt number is below this, so
    #: bounded retries can be observed succeeding.  A large value makes
    #: the crash permanent and forces the serial fallback.
    crash_attempts: int = 1
    #: Hang the worker executing this pool-task index.
    hang_task: int | None = None
    #: How long the injected hang sleeps (the watchdog should fire long
    #: before; this bound keeps an unwatched test from stalling forever).
    hang_seconds: float = 120.0
    #: Raise ``KeyboardInterrupt`` inside the worker running this task.
    interrupt_task: int | None = None
    #: Corrupt the bytes of the Nth on-disk cache read.
    corrupt_read: int | None = None
    #: Raise ``OSError`` on the Nth on-disk cache write.
    fail_write: int | None = None
    #: Raise on the Nth shared-memory arena attach.
    fail_shm_attach: int | None = None
    #: Parameterizes the corruption mask (never read at decision time).
    seed: int = 0

    def any_active(self) -> bool:
        return any(
            getattr(self, f.name) is not None
            for f in fields(self)
            if f.name not in ("crash_attempts", "hang_seconds", "seed")
        )


_INT_FIELDS = frozenset(
    (
        "crash_task",
        "crash_attempts",
        "hang_task",
        "interrupt_task",
        "corrupt_read",
        "fail_write",
        "fail_shm_attach",
        "seed",
    )
)
_FLOAT_FIELDS = frozenset(("hang_seconds",))


def parse_plan(text: str) -> FaultPlan:
    """Parse a ``$REPRO_FAULTS``-style plan string.

    ``"crash_task=0,hang_task=2,hang_seconds=30"`` -> a
    :class:`FaultPlan`; unknown keys and unparsable values raise
    :class:`FaultPlanError` -- a typo in a chaos-test plan must fail
    loudly, not silently test nothing.
    """
    plan: dict = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        key = key.strip()
        if not sep:
            raise FaultPlanError(f"fault plan item {item!r} is not key=value")
        try:
            if key in _INT_FIELDS:
                plan[key] = int(value)
            elif key in _FLOAT_FIELDS:
                plan[key] = float(value)
            else:
                raise FaultPlanError(f"unknown fault plan key {key!r}")
        except ValueError as exc:
            raise FaultPlanError(
                f"fault plan value {value!r} for {key!r} is not a number"
            ) from exc
    return FaultPlan(**plan)


# ----------------------------------------------------------------------
# activation
# ----------------------------------------------------------------------
_PLAN: FaultPlan | None = None

#: Per-process call counters for the counter-keyed injection points.
_COUNTS = {"cache_read": 0, "cache_write": 0, "shm_attach": 0}


def install(plan: FaultPlan | str | None) -> None:
    """Install a plan process-wide (a string is parsed first).

    Overrides ``$REPRO_FAULTS`` for this process; pool workers receive
    the installed plan explicitly (see :mod:`repro.pool`), so spawn
    children honor it too.  Resets the injection counters so repeated
    installs are independent experiments.
    """
    global _PLAN
    _PLAN = parse_plan(plan) if isinstance(plan, str) else plan
    reset_counters()


def clear() -> None:
    """Remove the installed plan (``$REPRO_FAULTS`` applies again)."""
    install(None)


def reset_counters() -> None:
    for key in _COUNTS:
        _COUNTS[key] = 0


def active_plan() -> FaultPlan | None:
    """The plan in effect: installed plan first, then ``$REPRO_FAULTS``.

    Returns ``None`` (every hook no-ops) when neither is set; a present
    but empty env var also means no faults.
    """
    if _PLAN is not None:
        return _PLAN
    text = os.environ.get(FAULTS_ENV)
    if not text:
        return None
    return parse_plan(text)


@contextmanager
def injected(plan: FaultPlan | str | None = None, /, **kwargs):
    """Scoped activation: ``with faults.injected(crash_task=0): ...``.

    Accepts a ready plan, a plan string, or field kwargs; restores the
    previously installed plan (and fresh counters) on exit.
    """
    if plan is None:
        plan = FaultPlan(**kwargs)
    elif kwargs:
        if isinstance(plan, str):
            plan = parse_plan(plan)
        plan = replace(plan, **kwargs)
    previous = _PLAN
    install(plan)
    try:
        yield plan
    finally:
        install(previous)


# ----------------------------------------------------------------------
# injection points
# ----------------------------------------------------------------------
def on_pool_task(
    index: int, attempt: int, plan: FaultPlan | None = None
) -> None:
    """Hook run in the worker before a pool task executes.

    ``plan`` is shipped explicitly by :mod:`repro.pool` so spawn workers
    (which share neither globals nor necessarily env mutations made
    after launch) see the parent's installed plan; ``None`` falls back
    to this process's own active plan.
    """
    plan = plan if plan is not None else active_plan()
    if plan is None:
        return
    if plan.interrupt_task is not None and index == plan.interrupt_task:
        raise KeyboardInterrupt(f"fault-injected interrupt on task {index}")
    if (
        plan.crash_task is not None
        and index == plan.crash_task
        and attempt < plan.crash_attempts
    ):
        # A real abnormal death: no exception, no cleanup, no result.
        os._exit(CRASH_EXIT_STATUS)
    if plan.hang_task is not None and index == plan.hang_task:
        time.sleep(plan.hang_seconds)


def on_cache_read(data: bytes) -> bytes:
    """Possibly corrupt one cache entry's bytes (deterministically).

    The first 8 bytes are XOR-masked, which destroys the pickle opcode
    stream -- ``pickle.loads`` then raises and the quarantine path runs.
    """
    plan = active_plan()
    if plan is None or plan.corrupt_read is None:
        return data
    count = _COUNTS["cache_read"]
    _COUNTS["cache_read"] += 1
    if count != plan.corrupt_read:
        return data
    mask = (0xFF ^ (plan.seed & 0x7F)) or 0xFF
    prefix = bytes(b ^ mask for b in data[:8])
    return prefix + data[8:]


def on_cache_write(path: str) -> None:
    """Possibly fail one cache write with ``OSError`` (fail-open path)."""
    plan = active_plan()
    if plan is None or plan.fail_write is None:
        return
    count = _COUNTS["cache_write"]
    _COUNTS["cache_write"] += 1
    if count == plan.fail_write:
        raise OSError(f"fault-injected cache write failure for {path}")


def on_shm_attach(name: str) -> None:
    """Possibly fail one shared-memory arena attach (fallback path)."""
    plan = active_plan()
    if plan is None or plan.fail_shm_attach is None:
        return
    count = _COUNTS["shm_attach"]
    _COUNTS["shm_attach"] += 1
    if count == plan.fail_shm_attach:
        raise OSError(
            f"fault-injected shared-memory attach failure for {name!r}"
        )
