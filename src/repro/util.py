"""Small shared helpers with (almost) no intra-package dependencies.

The only sibling imported -- lazily, inside functions -- is
:mod:`repro.faults`, whose injection hooks the cache layer consults so
chaos tests can corrupt reads and fail writes deterministically.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle

#: Environment variable capping each on-disk cache directory's size.
CACHE_MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"

#: Default per-directory cache budget (bytes): 1 GiB.
DEFAULT_CACHE_MAX_BYTES = 1 << 30

#: Environment variable overriding the cache root (tests, CI).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> str:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``.

    Lives here, dependency-free, because every on-disk store keys off
    it: calibration tables (micro), trace/measured memo caches, and the
    tuning profiles (:mod:`repro.tune`) -- the last of which is read by
    modules (``sim``, ``hw``) that must not import :mod:`repro.micro`.
    """
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def spec_fingerprint(spec) -> str:
    """Content hash of an architecture spec (cache invalidation key).

    Hashes a canonical form (sorted dict keys) so equal specs built
    with different ``functional_units`` insertion orders fingerprint
    identically.  Lives here, dependency-free, because both the
    calibration cache (micro) and the trace cache (sim) key on it.
    """
    canonical = json.dumps(
        dataclasses.asdict(spec), sort_keys=True, default=repr
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def atomic_write_bytes(path: str | os.PathLike, data: bytes) -> bool:
    """Atomically write ``data`` to ``path`` via a same-directory temp
    file and :func:`os.replace`, failing open on filesystem errors.

    Used by the on-disk caches (calibration tables, trace memos): an
    unwritable cache root must never discard freshly computed results,
    so errors clean up best-effort and report ``False`` instead of
    raising.  The temp file is fsynced before the replace so a crash
    mid-write can never publish a truncated entry under the final name;
    an fsync *error* still publishes (fail open -- the quarantine path
    in :class:`VersionedPickleCache` recovers if the bytes were in fact
    torn).
    """
    from repro import faults

    path = os.fspath(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        faults.on_cache_write(path)
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(tmp, "wb") as handle:
            handle.write(data)
            try:
                handle.flush()
                os.fsync(handle.fileno())
            except OSError:
                pass
        os.replace(tmp, path)
        return True
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return False


class VersionedPickleCache:
    """Shared protocol of the on-disk pickle caches.

    One implementation of the rules every cache directory follows --
    versioned dict payloads, fail-open loads that refresh mtime for LRU
    ordering, atomic stores followed by :func:`evict_lru`, quarantine of
    corrupt entries -- so the trace and measured-run caches cannot drift
    apart.  Subclasses pass their version constant and file suffix, and
    type-check the loaded value.

    Degradation counters (read by the health telemetry): ``quarantines``
    counts corrupt entries renamed to ``*.corrupt``; ``write_errors``
    counts stores that failed open.
    """

    def __init__(
        self, directory: str | os.PathLike, version, suffix: str = ".pkl"
    ) -> None:
        self.directory = os.fspath(directory)
        self.version = version
        self.suffix = suffix
        self.quarantines = 0
        self.write_errors = 0
        # Metric namespace, derived from the suffix: ".trace.pkl" ->
        # "cache.trace.*", ".run.pkl" -> "cache.run.*", and so on.
        parts = suffix.strip(".").split(".")
        self.kind = parts[0] if parts and parts[0] else "pickle"

    def _metric(self, name: str, value: float = 1) -> None:
        from repro.obs import metrics

        metrics.inc(f"cache.{self.kind}.{name}", value)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}{self.suffix}")

    def _quarantine(self, path: str) -> None:
        """Rename a corrupt entry to ``*.corrupt`` -- once.

        A torn or bit-rotted entry must not be re-parsed (and re-fail)
        on every lookup: the rename makes the next lookup a plain miss,
        keeps the evidence on disk for inspection, and lets the LRU
        eviction reclaim it eventually.  Best-effort: losing a race with
        a concurrent quarantine (or an unwritable directory) is fine,
        the entry simply stays a miss.
        """
        try:
            os.replace(path, f"{path}.corrupt")
            self.quarantines += 1
            self._metric("quarantines")
        except OSError:
            pass

    def load_payload(self, key: str):
        """The stored value for ``key``, or ``None`` on any miss.

        Unpickling arbitrary bytes can raise nearly anything; a broken
        entry is quarantined and reported as a miss, never a crash.  A
        well-formed entry of a different version is a plain miss (it is
        valid data for older code, and the next store overwrites it).
        """
        from repro import faults

        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            self._metric("misses")
            return None
        data = faults.on_cache_read(data)
        try:
            payload = pickle.loads(data)
        except Exception:
            self._quarantine(path)
            self._metric("misses")
            return None
        if not isinstance(payload, dict):
            self._quarantine(path)
            self._metric("misses")
            return None
        if payload.get("version") != self.version:
            self._metric("misses")
            return None
        value = payload.get("value")
        if value is None:
            self._metric("misses")
            return None
        try:
            os.utime(path)  # refresh mtime: LRU recency, not just age
        except OSError:
            pass
        self._metric("hits")
        return value

    def store_payload(self, key: str, value) -> None:
        """Atomically persist ``value``; fail open, then enforce the
        directory's size budget without evicting the fresh entry."""
        payload = {"version": self.version, "value": value}
        path = self._path(key)
        if atomic_write_bytes(
            path, pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        ):
            self._metric("stores")
            evicted = evict_lru(self.directory, keep=(path,))
            if evicted:
                self._metric("evictions", evicted)
        else:
            self.write_errors += 1
            self._metric("write_errors")


def cache_max_bytes() -> int:
    """Per-directory size budget for the on-disk caches.

    Read from ``$REPRO_CACHE_MAX_BYTES``; values ``<= 0`` disable
    eviction entirely, unparsable values fall back to the default
    (fail open, like every other cache-layer error).
    """
    raw = os.environ.get(CACHE_MAX_BYTES_ENV)
    if raw is None:
        return DEFAULT_CACHE_MAX_BYTES
    try:
        return int(raw)
    except ValueError:
        return DEFAULT_CACHE_MAX_BYTES


def evict_lru(
    directory: str | os.PathLike,
    max_bytes: int | None = None,
    keep: tuple = (),
) -> int:
    """Least-recently-used eviction for one cache directory.

    Deletes oldest-mtime files until the directory's regular files fit
    inside ``max_bytes`` (default: :func:`cache_max_bytes`); loads keep
    entries fresh by touching their mtime, so mtime order approximates
    recency of *use*, not just of creation.  Paths in ``keep`` (e.g. an
    entry written moments ago) are never evicted.  Returns the number of
    files removed; every filesystem error fails open.
    """
    if max_bytes is None:
        max_bytes = cache_max_bytes()
    if max_bytes <= 0:
        return 0
    directory = os.fspath(directory)
    keep_paths = {os.path.abspath(os.fspath(p)) for p in keep}
    try:
        names = os.listdir(directory)
    except OSError:
        return 0
    entries = []
    for name in names:
        path = os.path.join(directory, name)
        try:
            status = os.stat(path)
        except OSError:
            continue
        if not os.path.isfile(path):
            continue
        entries.append((status.st_mtime, status.st_size, path))
    total = sum(size for _, size, _ in entries)
    evicted = 0
    for _, size, path in sorted(entries):
        if total <= max_bytes:
            break
        if os.path.abspath(path) in keep_paths:
            continue
        try:
            os.unlink(path)
        except OSError:
            continue
        total -= size
        evicted += 1
    return evicted
