"""Small shared helpers with no intra-package dependencies."""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os


def spec_fingerprint(spec) -> str:
    """Content hash of an architecture spec (cache invalidation key).

    Hashes a canonical form (sorted dict keys) so equal specs built
    with different ``functional_units`` insertion orders fingerprint
    identically.  Lives here, dependency-free, because both the
    calibration cache (micro) and the trace cache (sim) key on it.
    """
    canonical = json.dumps(
        dataclasses.asdict(spec), sort_keys=True, default=repr
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def atomic_write_bytes(path: str | os.PathLike, data: bytes) -> bool:
    """Atomically write ``data`` to ``path`` via a same-directory temp
    file and :func:`os.replace`, failing open on filesystem errors.

    Used by the on-disk caches (calibration tables, trace memos): an
    unwritable cache root must never discard freshly computed results,
    so errors clean up best-effort and report ``False`` instead of
    raising.
    """
    path = os.fspath(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(tmp, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
        return True
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return False
