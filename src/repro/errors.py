"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type when embedding the tools in larger systems.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SpecError(ReproError):
    """An architecture specification is inconsistent or unsupported."""


class OccupancyError(ReproError):
    """A kernel cannot be launched with the requested resources."""


class IsaError(ReproError):
    """An instruction, operand, or program is malformed."""


class AssemblyError(IsaError):
    """Textual assembly could not be parsed."""


class ValidationError(IsaError):
    """A kernel failed static validation."""


class SimulationError(ReproError):
    """The functional simulator hit an unsupported or faulty situation."""


class LaunchError(SimulationError):
    """A kernel launch configuration is invalid."""


class MemoryAccessError(SimulationError):
    """An out-of-bounds or misaligned memory access occurred."""


class DivergenceError(SimulationError):
    """Control flow diverged in a way the simulator does not support."""


class AnalysisError(ReproError):
    """Static analysis reached an inconsistent conclusion.

    Raised, for example, when the dedup soundness proof certifies a
    block class whose probe simulations then disagree -- that means a
    bug in either the prover or the simulator and must never be
    silently demoted.
    """


class HardwareModelError(ReproError):
    """The hardware timing simulator was configured or used incorrectly."""


class ModelError(ReproError):
    """The performance model received inconsistent inputs."""


class CalibrationError(ModelError):
    """Calibration tables are missing, malformed, or out of range."""
