"""Recorder, spans, and the process-wide enable switch.

The whole observability subsystem hangs off one module-global
:class:`Recorder`.  With no recorder installed every instrumentation
point -- :func:`span`, the metric helpers, the structured log's event
capture -- is a cheap no-op (one module-global check, the same
discipline as :mod:`repro.faults`), which is what lets the hooks stay
compiled into the hot paths permanently.

Design constraints inherited from the execution substrate:

* **Deterministic IDs.**  Span IDs are ``<lane>:<sequence>`` -- a
  per-recorder counter in execution order, never wall clock or PRNG --
  so two runs of the same command produce comparable traces (the
  timestamps differ, the structure and IDs do not).  Worker-side
  recorders get lanes derived from the pool-call number and the task
  index (``pool0.t3``), which are themselves deterministic.
* **Monotonic timestamps.**  ``time.perf_counter_ns`` throughout; on
  Linux (the only platform with fork pools) that is ``CLOCK_MONOTONIC``,
  shared across processes, so worker spans land on a comparable
  timebase.
* **Out-of-band worker capture.**  Worker processes never write files
  and never touch the payloads they compute: :func:`capture` installs a
  fresh recorder around one pool task, and :mod:`repro.pool` ships the
  captured events home *next to* the result, stripping the envelope
  before the caller sees it -- simulation results stay
  pickle-byte-identical with obs on or off.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext

#: Environment variable naming the observability output directory; when
#: set, ``python -m repro`` records every subcommand (same as ``--obs``).
OBS_ENV = "REPRO_OBS"


class Recorder:
    """One run's event buffer, metric registry, and span bookkeeping.

    Everything is plain dicts and lists: the recorder is shipped across
    process boundaries (worker capture) and serialized to JSONL, so it
    must stay trivially picklable and JSON-friendly.
    """

    def __init__(self, lane: str = "main") -> None:
        self.lane = lane
        self.events: list[dict] = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        #: name -> [count, total, min, max]
        self.histograms: dict[str, list] = {}
        self.annotations: dict = {}
        self._seq = 0
        self._pool_calls = 0
        self._stack: list[str] = []

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    def next_id(self) -> str:
        self._seq += 1
        return f"{self.lane}:{self._seq}"

    def next_pool_lane(self) -> str:
        """Deterministic lane prefix for one ``map_tasks`` fan-out."""
        lane = f"pool{self._pool_calls}"
        self._pool_calls += 1
        if self.lane != "main":
            lane = f"{self.lane}.{lane}"
        return lane

    @contextmanager
    def span(self, name: str, **attrs):
        span_id = self.next_id()
        parent = self._stack[-1] if self._stack else None
        self._stack.append(span_id)
        error = False
        t0 = time.perf_counter_ns()
        try:
            yield span_id
        except BaseException:
            error = True
            raise
        finally:
            t1 = time.perf_counter_ns()
            self._stack.pop()
            event = {
                "type": "span",
                "id": span_id,
                "parent": parent,
                "lane": self.lane,
                "name": name,
                "t0": t0,
                "t1": t1,
                "attrs": attrs,
            }
            if error:
                event["error"] = True
            self.events.append(event)

    def event(self, name: str, **attrs) -> None:
        """A point-in-time event attached to the current span."""
        self.events.append(
            {
                "type": "event",
                "id": self.next_id(),
                "parent": self._stack[-1] if self._stack else None,
                "lane": self.lane,
                "name": name,
                "t": time.perf_counter_ns(),
                "attrs": attrs,
            }
        )

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            self.histograms[name] = [1, value, value, value]
        else:
            hist[0] += 1
            hist[1] += value
            hist[2] = min(hist[2], value)
            hist[3] = max(hist[3], value)

    def metrics_snapshot(self) -> dict:
        """JSON-ready view of every metric."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: {
                    "count": hist[0],
                    "total": hist[1],
                    "min": hist[2],
                    "max": hist[3],
                    "mean": hist[1] / hist[0] if hist[0] else 0.0,
                }
                for name, hist in sorted(self.histograms.items())
            },
        }

    # ------------------------------------------------------------------
    # cross-process adoption
    # ------------------------------------------------------------------
    def adopt(
        self,
        events: list[dict],
        counters: dict | None = None,
        gauges: dict | None = None,
        histograms: dict | None = None,
    ) -> None:
        """Merge one worker capture (events + metric deltas) in.

        Called exactly once per harvested pool result (see
        :mod:`repro.pool`); lost attempts ship nothing, serial re-runs
        record straight into this recorder, so no event can repeat.
        """
        self.events.extend(events)
        for name, value in (counters or {}).items():
            self.inc(name, value)
        for name, value in (gauges or {}).items():
            self.gauge(name, value)
        for name, hist in (histograms or {}).items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = list(hist)
            else:
                mine[0] += hist[0]
                mine[1] += hist[1]
                mine[2] = min(mine[2], hist[2])
                mine[3] = max(mine[3], hist[3])


# ----------------------------------------------------------------------
# the process-wide switch
# ----------------------------------------------------------------------
_RECORDER: Recorder | None = None

#: Reusable no-op context manager for disabled spans (stateless, hence
#: safe to share and re-enter).
_NOOP = nullcontext()


def enabled() -> bool:
    """Whether a recorder is installed (one global check per hook)."""
    return _RECORDER is not None


def current() -> Recorder | None:
    return _RECORDER


def start(lane: str = "main") -> Recorder:
    """Install a fresh process-wide recorder and return it."""
    global _RECORDER
    _RECORDER = Recorder(lane=lane)
    return _RECORDER


def stop() -> Recorder | None:
    """Uninstall and return the active recorder (``None`` when off)."""
    global _RECORDER
    recorder = _RECORDER
    _RECORDER = None
    return recorder


def span(name: str, **attrs):
    """Hierarchical span: ``with span("engine.run", kernel=...):``.

    A no-op context manager when observability is disabled.
    """
    recorder = _RECORDER
    if recorder is None:
        return _NOOP
    return recorder.span(name, **attrs)


def event(name: str, **attrs) -> None:
    recorder = _RECORDER
    if recorder is not None:
        recorder.event(name, **attrs)


def annotate(**fields) -> None:
    """Attach key/value facts to the run manifest (last write wins)."""
    recorder = _RECORDER
    if recorder is not None:
        recorder.annotations.update(fields)


@contextmanager
def capture(lane: str):
    """Worker-side capture: a fresh recorder for one pool task.

    Installed *instead of* any inherited recorder (fork workers inherit
    the parent's -- recording into that copy would silently lose the
    events with the worker), yielded so the caller can ship
    ``recorder.events`` and the metric dicts home, and uninstalled on
    exit.  The parent adopts the capture exactly once, at result
    harvest (:class:`repro.pool` envelope protocol).
    """
    global _RECORDER
    previous = _RECORDER
    recorder = Recorder(lane=lane)
    _RECORDER = recorder
    try:
        yield recorder
    finally:
        _RECORDER = previous
