"""Module-level metric helpers delegating to the active recorder.

The registry itself lives on the :class:`~repro.obs.core.Recorder` (so
worker-side increments travel home with the pool envelopes instead of
dying with the worker process); these functions are the cheap call
sites the instrumented layers use:

* :func:`inc` -- monotonic counters (``cache.trace.hits``,
  ``engine.classes.proved``, ``pool.timeouts``, ...);
* :func:`gauge` -- last-write-wins values (``engine.workers``);
* :func:`observe` -- histograms tracking count/total/min/max
  (``functional.slab_width``, ``engine.wall_seconds``).

Every helper is a no-op costing one module-global check while
observability is disabled.  :func:`absorb_health` folds a frozen
:class:`~repro.pool.HealthRecord` (or any counter dataclass) into the
registry under a prefix -- how the scattered ``EngineStats``/
``HealthRecord`` counters surface in one place without changing their
public dataclass APIs.
"""

from __future__ import annotations

import dataclasses

from repro.obs import core


def inc(name: str, value: float = 1) -> None:
    recorder = core.current()
    if recorder is not None:
        recorder.inc(name, value)


def gauge(name: str, value: float) -> None:
    recorder = core.current()
    if recorder is not None:
        recorder.gauge(name, value)


def observe(name: str, value: float) -> None:
    recorder = core.current()
    if recorder is not None:
        recorder.observe(name, value)


def snapshot() -> dict:
    """The active recorder's metrics (empty sections when disabled)."""
    recorder = core.current()
    if recorder is None:
        return {"counters": {}, "gauges": {}, "histograms": {}}
    return recorder.metrics_snapshot()


def absorb_health(prefix: str, record) -> None:
    """Fold a counter dataclass's nonzero fields into the registry.

    ``absorb_health("engine", stats.health)`` yields counters like
    ``engine.health.timeouts``; all-zero records add nothing, so a
    healthy run's registry stays free of health noise.
    """
    recorder = core.current()
    if recorder is None or record is None:
        return
    for field in dataclasses.fields(record):
        value = getattr(record, field.name)
        if isinstance(value, (int, float)) and value:
            recorder.inc(f"{prefix}.health.{field.name}", value)
