"""repro.obs: tracing, metrics, and run manifests for the pipeline.

Three pillars, all zero-dependency and disabled by default:

* **Tracing** (:mod:`repro.obs.core`): hierarchical
  ``span("engine.run", kernel=...)`` context managers with
  deterministic ``lane:seq`` IDs and monotonic timestamps, threaded
  through the engine's dedup ladder, the functional simulator's slab
  batching, the process pools (worker-side spans ship home with the
  results), the timing layer, calibration, and crossval.
* **Metrics** (:mod:`repro.obs.metrics`): a process-wide counter/gauge/
  histogram registry (cache hits per cache, classes proved/synthesized/
  interpreted, pool retries/timeouts, slab widths, events simulated)
  that absorbs the scattered ``EngineStats``/``HealthRecord`` counters
  without changing those dataclasses' APIs.
* **Export** (:mod:`repro.obs.export` / :mod:`repro.obs.report`):
  ``events.jsonl``, Perfetto-loadable ``trace.json``, a metrics
  snapshot, and a provenance ``manifest.json``, summarized by
  ``repro obs report``.

Activation: ``repro --obs DIR <subcommand>`` or ``$REPRO_OBS``; or
programmatically::

    with obs.session("/tmp/run1", argv=["matmul"]):
        run_matmul(...)

Instrumentation sites pay one module-global check while disabled; with
observability *enabled*, every simulation payload (traces, MeasuredRun
pickles) stays byte-identical to an un-instrumented run -- events
travel out-of-band, never inside results.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs import log, metrics
from repro.obs.core import (
    OBS_ENV,
    Recorder,
    annotate,
    capture,
    current,
    enabled,
    event,
    span,
    start,
    stop,
)
from repro.obs.export import export_session

__all__ = [
    "OBS_ENV",
    "Recorder",
    "annotate",
    "capture",
    "current",
    "enabled",
    "event",
    "export_session",
    "log",
    "metrics",
    "session",
    "span",
    "start",
    "stop",
]


@contextmanager
def session(
    directory,
    argv: list[str] | None = None,
    command: str | None = None,
):
    """Record everything inside the block and export to ``directory``.

    The export runs even when the block raises (the trace of a failed
    run is the one you want most); the in-flight exception is recorded
    as a nonzero ``exit_status`` in the manifest.
    """
    recorder = start()
    status = 0
    try:
        yield recorder
    except BaseException:
        status = 1
        raise
    finally:
        stop()
        export_session(
            recorder,
            directory,
            argv=argv,
            command=command,
            exit_status=status,
        )
