"""Structured logging: leveled stderr rendering plus event capture.

Replaces the ad-hoc ``print(..., file=sys.stderr)`` notices scattered
through the CLI and the slow paths (calibration runs, tuning auto-runs,
engine fallbacks).  Two outputs, independently switched:

* **stderr rendering** -- the message string, verbatim, exactly as the
  old prints rendered it, filtered by level.  The threshold comes from
  ``--log-level`` (:func:`set_level`) or ``$REPRO_LOG``, defaulting to
  ``info`` so existing behaviour is unchanged.
* **event capture** -- when observability is active the full structured
  record (level, message, machine-readable fields) lands in the run's
  event log regardless of the stderr threshold, so a quiet run still
  has a complete history.

``render=False`` records the event without printing -- used where an
existing channel (e.g. ``warnings.warn`` for the engine's cross-block
RAW warning) already owns the user-facing rendering.
"""

from __future__ import annotations

import os
import sys
import time

from repro.obs import core

#: Environment variable naming the stderr log threshold.
LOG_ENV = "REPRO_LOG"

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

_OVERRIDE: str | None = None


def set_level(name: str | None) -> None:
    """Install a process-wide threshold (``--log-level``); ``None``
    restores the ``$REPRO_LOG``/default resolution."""
    global _OVERRIDE
    if name is not None and name not in LEVELS:
        raise ValueError(
            f"unknown log level {name!r}; choose from {sorted(LEVELS)}"
        )
    _OVERRIDE = name


def threshold() -> str:
    """Active level name: override, then ``$REPRO_LOG``, then ``info``.

    An unknown env value fails open to ``info`` -- a typo must not
    silence (or spam) a run.
    """
    if _OVERRIDE is not None:
        return _OVERRIDE
    raw = os.environ.get(LOG_ENV, "").strip().lower()
    return raw if raw in LEVELS else "info"


def log(level: str, message: str, *, render: bool = True, **fields) -> None:
    severity = LEVELS.get(level, LEVELS["info"])
    if render and severity >= LEVELS[threshold()]:
        print(message, file=sys.stderr)
    recorder = core.current()
    if recorder is not None:
        recorder.events.append(
            {
                "type": "log",
                "id": recorder.next_id(),
                "parent": (
                    recorder._stack[-1] if recorder._stack else None
                ),
                "lane": recorder.lane,
                "level": level,
                "message": message,
                "fields": fields,
                "t": time.perf_counter_ns(),
            }
        )


def debug(message: str, **fields) -> None:
    log("debug", message, **fields)


def info(message: str, **fields) -> None:
    log("info", message, **fields)


def warning(message: str, *, render: bool = True, **fields) -> None:
    log("warning", message, render=render, **fields)


def error(message: str, **fields) -> None:
    log("error", message, **fields)
