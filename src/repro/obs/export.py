"""Exporters: JSONL event log, Chrome trace JSON, run manifest.

One :func:`export_session` call at the end of an observed run writes
four files next to each other in the output directory:

* ``events.jsonl`` -- every recorded event (spans, point events, log
  records), one JSON object per line, in completion order;
* ``trace.json`` -- the same spans in Chrome trace-event format
  (``{"traceEvents": [...]}``), loadable in Perfetto / ``chrome://
  tracing``; one track (``tid``) per lane, so pool workers render as
  parallel swimlanes under the main track;
* ``metrics.json`` -- the counter/gauge/histogram registry snapshot;
* ``manifest.json`` -- run provenance: command line, spec fingerprints
  and cache versions, tuning provenance, git describe, the active fault
  plan, interpreter/platform, wall-clock timestamps.

Every manifest section is assembled fail-open (a missing git binary or
an unreadable tuning profile yields ``null``, never a crashed run), and
the writers go through :func:`repro.util.atomic_write_bytes` so a
killed run cannot leave a torn file.
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.obs.core import Recorder

#: Manifest schema stamp.
MANIFEST_SCHEMA = "obs_manifest/1"

#: Chrome trace process id (single logical process per run).
_PID = 1


def _lanes(events: list[dict]) -> list[str]:
    """Deterministic track order: ``main`` first, then sorted lanes."""
    seen = {event.get("lane", "main") for event in events}
    seen.add("main")
    return ["main"] + sorted(seen - {"main"})


def chrome_trace(events: list[dict]) -> dict:
    """Spans/events/logs as a Chrome trace-event JSON object.

    Timestamps are microseconds relative to the earliest recorded
    nanosecond stamp, so the trace starts at zero regardless of the
    process's monotonic-clock epoch.
    """
    stamps = [
        event["t0"] if event["type"] == "span" else event["t"]
        for event in events
        if event.get("type") in ("span", "event", "log")
    ]
    origin = min(stamps) if stamps else 0
    lanes = _lanes(events)
    tid_of = {lane: index for index, lane in enumerate(lanes)}
    trace_events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": _PID,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    for lane in lanes:
        trace_events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": _PID,
                "tid": tid_of[lane],
                "args": {"name": lane},
            }
        )
    for event in events:
        tid = tid_of.get(event.get("lane", "main"), 0)
        if event["type"] == "span":
            args = dict(event.get("attrs") or {})
            args["id"] = event["id"]
            if event.get("parent"):
                args["parent"] = event["parent"]
            if event.get("error"):
                args["error"] = True
            trace_events.append(
                {
                    "ph": "X",
                    "cat": "repro",
                    "name": event["name"],
                    "pid": _PID,
                    "tid": tid,
                    "ts": (event["t0"] - origin) / 1000.0,
                    "dur": max(event["t1"] - event["t0"], 0) / 1000.0,
                    "args": args,
                }
            )
        elif event["type"] == "event":
            trace_events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "cat": "repro",
                    "name": event["name"],
                    "pid": _PID,
                    "tid": tid,
                    "ts": (event["t"] - origin) / 1000.0,
                    "args": dict(event.get("attrs") or {}),
                }
            )
        elif event["type"] == "log":
            trace_events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "cat": "repro.log",
                    "name": f"log.{event.get('level', 'info')}",
                    "pid": _PID,
                    "tid": tid,
                    "ts": (event["t"] - origin) / 1000.0,
                    "args": {
                        "message": event.get("message", ""),
                        **(event.get("fields") or {}),
                    },
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


# ----------------------------------------------------------------------
# manifest
# ----------------------------------------------------------------------
def _git_describe() -> str | None:
    """``git describe --always --dirty`` of the source tree, or None."""
    import subprocess

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    try:
        result = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    text = result.stdout.strip()
    return text if result.returncode == 0 and text else None


def _cache_versions() -> dict:
    versions: dict = {}
    try:
        from repro.sim.engine import ENGINE_CACHE_VERSION

        versions["engine"] = ENGINE_CACHE_VERSION
    except Exception:
        versions["engine"] = None
    try:
        from repro.hw.engine import HW_CACHE_VERSION

        versions["hw"] = HW_CACHE_VERSION
    except Exception:
        versions["hw"] = None
    try:
        from repro.micro.calibration import CALIBRATION_CACHE_VERSION

        versions["calibration"] = CALIBRATION_CACHE_VERSION
    except Exception:
        versions["calibration"] = None
    try:
        from repro.tune.profile import TUNE_PROFILE_VERSION

        versions["tune"] = TUNE_PROFILE_VERSION
    except Exception:
        versions["tune"] = None
    return versions


def _tuning_provenance() -> dict | None:
    """Resolved engine knobs and where each value came from."""
    try:
        from repro.tune import resolve_with_source

        tuning = {}
        for knob in ("grid_batch_blocks", "min_parallel_events"):
            value, source = resolve_with_source(knob)
            tuning[knob] = {"value": value, "source": source}
        return tuning
    except Exception:
        return None


def _fault_plan() -> str | None:
    try:
        from repro import faults

        plan = faults.active_plan()
        return None if plan is None else repr(plan)
    except Exception:
        return None


def _machine() -> str | None:
    try:
        from repro.tune.profile import machine_fingerprint

        return machine_fingerprint()
    except Exception:
        return None


def build_manifest(
    recorder: Recorder,
    argv: list[str] | None = None,
    command: str | None = None,
    exit_status: int | None = None,
) -> dict:
    import platform

    spans = sum(1 for e in recorder.events if e["type"] == "span")
    logs = sum(1 for e in recorder.events if e["type"] == "log")
    return {
        "schema": MANIFEST_SCHEMA,
        "command": command,
        "argv": list(argv) if argv is not None else None,
        "exit_status": exit_status,
        "written_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "machine": _machine(),
        "git_describe": _git_describe(),
        "cache_versions": _cache_versions(),
        "tuning": _tuning_provenance(),
        "fault_plan": _fault_plan(),
        "annotations": dict(sorted(recorder.annotations.items())),
        "events": len(recorder.events),
        "spans": spans,
        "logs": logs,
    }


# ----------------------------------------------------------------------
# the one-call exporter
# ----------------------------------------------------------------------
def _write(path: str, data: bytes) -> bool:
    from repro.util import atomic_write_bytes

    return atomic_write_bytes(path, data)


def export_session(
    recorder: Recorder,
    directory: str | os.PathLike,
    argv: list[str] | None = None,
    command: str | None = None,
    exit_status: int | None = None,
) -> dict:
    """Write all four artifacts; returns ``{name: path}`` of them."""
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    paths = {
        "events": os.path.join(directory, "events.jsonl"),
        "trace": os.path.join(directory, "trace.json"),
        "metrics": os.path.join(directory, "metrics.json"),
        "manifest": os.path.join(directory, "manifest.json"),
    }
    lines = "".join(
        json.dumps(event, sort_keys=True) + "\n" for event in recorder.events
    )
    _write(paths["events"], lines.encode())
    _write(
        paths["trace"],
        json.dumps(chrome_trace(recorder.events)).encode(),
    )
    _write(
        paths["metrics"],
        json.dumps(
            recorder.metrics_snapshot(), indent=2, sort_keys=True
        ).encode(),
    )
    manifest = build_manifest(
        recorder, argv=argv, command=command, exit_status=exit_status
    )
    _write(
        paths["manifest"],
        json.dumps(manifest, indent=2, sort_keys=True).encode(),
    )
    return paths
