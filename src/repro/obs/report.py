"""``repro obs report``: summarize one exported observability run.

Pure functions over the files :mod:`repro.obs.export` wrote -- no
clocks, no environment -- so a fixture directory pins the exact report
in tests.  The summary answers the triage questions the ISSUE lists:

* **Where did the wall-clock go?**  Top spans by *self* time (span
  duration minus the duration of its direct children), aggregated by
  span name across the whole run, worker lanes included.
* **Which caches hit?**  Hit rates derived from the
  ``cache.<kind>.hits``/``cache.<kind>.misses`` counter pairs.
* **What degraded?**  Every nonzero ``*.health.*`` counter plus every
  warning/error log record.
"""

from __future__ import annotations

import json
import os

#: Report schema stamp.
REPORT_SCHEMA = "obs_report/1"


class ObsReportError(Exception):
    """The directory does not contain a readable observability run."""


def load_events(directory: str | os.PathLike) -> list[dict]:
    path = os.path.join(os.fspath(directory), "events.jsonl")
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as exc:
        raise ObsReportError(f"cannot read {path}: {exc}") from exc
    events = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except ValueError:
            continue  # torn tail line: fail open, keep the rest
        if isinstance(event, dict):
            events.append(event)
    return events


def _load_json(directory: str | os.PathLike, name: str) -> dict:
    path = os.path.join(os.fspath(directory), name)
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return {}
    return payload if isinstance(payload, dict) else {}


def span_summary(events: list[dict]) -> list[dict]:
    """Per-name aggregation with self-time, sorted by self-time desc."""
    spans = [e for e in events if e.get("type") == "span"]
    child_time: dict[str, int] = {}
    for span in spans:
        parent = span.get("parent")
        if parent:
            child_time[parent] = child_time.get(parent, 0) + max(
                span["t1"] - span["t0"], 0
            )
    totals: dict[str, dict] = {}
    for span in spans:
        duration = max(span["t1"] - span["t0"], 0)
        self_time = max(duration - child_time.get(span["id"], 0), 0)
        entry = totals.setdefault(
            span["name"],
            {"name": span["name"], "count": 0, "total_ms": 0.0,
             "self_ms": 0.0, "errors": 0},
        )
        entry["count"] += 1
        entry["total_ms"] += duration / 1e6
        entry["self_ms"] += self_time / 1e6
        if span.get("error"):
            entry["errors"] += 1
    ordered = sorted(
        totals.values(), key=lambda e: (-e["self_ms"], e["name"])
    )
    for entry in ordered:
        entry["total_ms"] = round(entry["total_ms"], 3)
        entry["self_ms"] = round(entry["self_ms"], 3)
    return ordered


def cache_summary(metrics: dict) -> dict:
    """Hit rates per cache kind from the counter registry."""
    counters = metrics.get("counters", {}) if isinstance(metrics, dict) else {}
    kinds: dict[str, dict] = {}
    for name, value in counters.items():
        parts = name.split(".")
        if len(parts) != 3 or parts[0] != "cache":
            continue
        if parts[2] not in ("hits", "misses"):
            continue
        entry = kinds.setdefault(parts[1], {"hits": 0, "misses": 0})
        entry[parts[2]] = value
    for entry in kinds.values():
        lookups = entry["hits"] + entry["misses"]
        entry["hit_rate"] = (
            round(entry["hits"] / lookups, 4) if lookups else None
        )
    return dict(sorted(kinds.items()))


def degradation_summary(events: list[dict], metrics: dict) -> dict:
    counters = metrics.get("counters", {}) if isinstance(metrics, dict) else {}
    health = {
        name: value
        for name, value in sorted(counters.items())
        if ".health." in name and value
    }
    warnings = [
        {
            "level": event.get("level"),
            "message": event.get("message", ""),
        }
        for event in events
        if event.get("type") == "log"
        and event.get("level") in ("warning", "error")
    ]
    return {"health_counters": health, "warnings": warnings}


def build_report(
    directory: str | os.PathLike, top_spans: int = 15
) -> dict:
    events = load_events(directory)
    metrics = _load_json(directory, "metrics.json")
    manifest = _load_json(directory, "manifest.json")
    spans = span_summary(events)
    return {
        "schema": REPORT_SCHEMA,
        "directory": os.fspath(directory),
        "command": manifest.get("command"),
        "manifest": manifest,
        "totals": {
            "events": len(events),
            "spans": sum(1 for e in events if e.get("type") == "span"),
            "logs": sum(1 for e in events if e.get("type") == "log"),
            "lanes": len({e.get("lane", "main") for e in events}),
        },
        "top_spans": spans[:top_spans],
        "caches": cache_summary(metrics),
        "degradations": degradation_summary(events, metrics),
        "counters": metrics.get("counters", {}),
        "histograms": metrics.get("histograms", {}),
    }


# ----------------------------------------------------------------------
# renderers
# ----------------------------------------------------------------------
def render_text(report: dict) -> str:
    lines = []
    command = report.get("command") or "?"
    totals = report["totals"]
    lines.append(f"observed command     : {command}")
    manifest = report.get("manifest") or {}
    if manifest.get("git_describe"):
        lines.append(f"source               : {manifest['git_describe']}")
    lines.append(
        f"events               : {totals['events']} "
        f"({totals['spans']} spans, {totals['logs']} logs, "
        f"{totals['lanes']} lanes)"
    )
    if report["top_spans"]:
        lines.append("top spans by self-time:")
        for entry in report["top_spans"]:
            lines.append(
                f"  {entry['name']:<28} x{entry['count']:<5} "
                f"self {entry['self_ms']:>10.3f} ms  "
                f"total {entry['total_ms']:>10.3f} ms"
                + (f"  ({entry['errors']} errors)" if entry["errors"] else "")
            )
    if report["caches"]:
        lines.append("cache hit rates:")
        for kind, entry in report["caches"].items():
            rate = entry["hit_rate"]
            rendered = f"{rate:.1%}" if rate is not None else "n/a"
            lines.append(
                f"  {kind:<12} {rendered:>7} "
                f"({entry['hits']:.0f} hits / {entry['misses']:.0f} misses)"
            )
    degradations = report["degradations"]
    if degradations["health_counters"] or degradations["warnings"]:
        lines.append("degradation events:")
        for name, value in degradations["health_counters"].items():
            lines.append(f"  {name} = {value:g}")
        for entry in degradations["warnings"]:
            lines.append(f"  [{entry['level']}] {entry['message']}")
    else:
        lines.append("degradation events   : none")
    return "\n".join(lines)


def render_markdown(report: dict) -> str:
    totals = report["totals"]
    lines = ["# repro observability report", ""]
    command = report.get("command") or "?"
    lines.append(f"Command: `{command}`")
    manifest = report.get("manifest") or {}
    if manifest.get("git_describe"):
        lines.append(f"Source: `{manifest['git_describe']}`")
    lines.append(
        f"{totals['events']} events ({totals['spans']} spans, "
        f"{totals['logs']} logs) across {totals['lanes']} lane(s)."
    )
    lines.append("")
    if report["top_spans"]:
        lines.append("## Top spans by self-time")
        lines.append("")
        lines.append("| span | count | self (ms) | total (ms) |")
        lines.append("|---|---:|---:|---:|")
        for entry in report["top_spans"]:
            lines.append(
                f"| {entry['name']} | {entry['count']} | "
                f"{entry['self_ms']:.3f} | {entry['total_ms']:.3f} |"
            )
        lines.append("")
    if report["caches"]:
        lines.append("## Cache hit rates")
        lines.append("")
        lines.append("| cache | hit rate | hits | misses |")
        lines.append("|---|---:|---:|---:|")
        for kind, entry in report["caches"].items():
            rate = entry["hit_rate"]
            rendered = f"{rate:.1%}" if rate is not None else "n/a"
            lines.append(
                f"| {kind} | {rendered} | {entry['hits']:.0f} | "
                f"{entry['misses']:.0f} |"
            )
        lines.append("")
    degradations = report["degradations"]
    if degradations["health_counters"] or degradations["warnings"]:
        lines.append("## Degradation events")
        lines.append("")
        for name, value in degradations["health_counters"].items():
            lines.append(f"- `{name}` = {value:g}")
        for entry in degradations["warnings"]:
            lines.append(f"- **{entry['level']}**: {entry['message']}")
        lines.append("")
    else:
        lines.append("No degradation events recorded.")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
