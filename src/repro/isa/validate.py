"""Static validation of kernels before simulation."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ValidationError
from repro.isa.instructions import MemRef, Pred, Reg
from repro.isa.opcodes import Opcode, OpKind
from repro.isa.program import Kernel

if TYPE_CHECKING:  # pragma: no cover - import cycle (arch -> isa)
    from repro.arch.specs import GpuSpec


def validate_kernel(kernel: Kernel, spec: GpuSpec | None = None) -> None:
    """Raise :class:`ValidationError` on any structural problem.

    Checks register/predicate bounds, label resolution, memory-space
    consistency (already enforced per-instruction), and that execution
    cannot fall off the end of the program.  With a ``spec``, also
    checks the kernel's static shared-memory footprint (including the
    ABI overhead) against the per-block hardware limit.
    """
    _check_terminates(kernel)
    if spec is not None and kernel.shared_memory_bytes > spec.sm.shared_memory_bytes:
        raise ValidationError(
            f"kernel {kernel.name!r} declares "
            f"{kernel.shared_memory_bytes} bytes of shared memory "
            f"(including ABI overhead), but {spec.name} provides "
            f"{spec.sm.shared_memory_bytes} bytes per block"
        )
    for position, instr in enumerate(kernel.instructions):
        where = f"instruction {position} ({instr})"
        for reg_index in instr.registers_read() + instr.registers_written():
            if reg_index >= kernel.num_registers:
                raise ValidationError(
                    f"{where}: register r{reg_index} out of range "
                    f"(kernel declares {kernel.num_registers})"
                )
        _check_predicates(kernel, instr, where)
        if instr.opcode.kind == OpKind.BRANCH:
            if instr.target not in kernel.labels:
                raise ValidationError(f"{where}: undefined label {instr.target!r}")
        shared = instr.shared_operand
        if shared is not None and instr.opcode.kind == OpKind.SETP:
            raise ValidationError(f"{where}: setp cannot read shared memory")
        _check_static_shared_bounds(kernel, instr, where)


def _check_predicates(kernel: Kernel, instr, where: str) -> None:
    preds: list[Pred] = []
    if instr.guard is not None:
        preds.append(instr.guard[0])
    if isinstance(instr.dst, Pred):
        preds.append(instr.dst)
    preds.extend(s for s in instr.srcs if isinstance(s, Pred))
    for pred in preds:
        if pred.index >= kernel.num_predicates:
            raise ValidationError(
                f"{where}: predicate p{pred.index} out of range "
                f"(kernel declares {kernel.num_predicates})"
            )


def _check_static_shared_bounds(kernel: Kernel, instr, where: str) -> None:
    """Shared references with no base register must fit the static footprint."""
    refs: list[MemRef] = []
    if isinstance(instr.dst, MemRef):
        refs.append(instr.dst)
    refs.extend(s for s in instr.srcs if isinstance(s, MemRef))
    limit = kernel.shared_memory_words * 4
    for ref in refs:
        if ref.space == "shared" and ref.base is None and ref.offset + 4 > limit:
            raise ValidationError(
                f"{where}: static shared access at byte {ref.offset} exceeds "
                f"the kernel's {limit}-byte shared footprint"
            )


def _check_terminates(kernel: Kernel) -> None:
    last = kernel.instructions[-1]
    if last.opcode is Opcode.EXIT:
        return
    if last.opcode is Opcode.BRA and last.guard is None:
        return
    raise ValidationError(
        "kernel must end with exit or an unconditional branch; "
        f"found {last.opcode.mnemonic}"
    )


def kernel_register_count(kernel: Kernel) -> int:
    """Highest register index actually referenced, plus one."""
    highest = -1
    for instr in kernel.instructions:
        used = instr.registers_read() + instr.registers_written()
        if used:
            highest = max(highest, max(used))
    return highest + 1
