"""Native GPU instruction set: opcodes, instructions, kernels, tools."""

from repro.isa.assembler import format_kernel, parse_kernel
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import (
    CTAID_X,
    CTAID_Y,
    NCTAID_X,
    NCTAID_Y,
    NTID,
    TID,
    Imm,
    Instruction,
    MemRef,
    Operand,
    Pred,
    Reg,
    Special,
)
from repro.isa.opcodes import (
    COMPARISONS,
    MNEMONICS,
    TABLE1_EXAMPLES,
    Opcode,
    OpKind,
    opcode_from_mnemonic,
)
from repro.isa.program import ABI_SHARED_OVERHEAD, Kernel
from repro.isa.validate import kernel_register_count, validate_kernel

__all__ = [
    "ABI_SHARED_OVERHEAD",
    "COMPARISONS",
    "CTAID_X",
    "CTAID_Y",
    "Imm",
    "Instruction",
    "Kernel",
    "KernelBuilder",
    "MNEMONICS",
    "MemRef",
    "NCTAID_X",
    "NCTAID_Y",
    "NTID",
    "Opcode",
    "OpKind",
    "Operand",
    "Pred",
    "Reg",
    "Special",
    "TABLE1_EXAMPLES",
    "TID",
    "format_kernel",
    "kernel_register_count",
    "opcode_from_mnemonic",
    "parse_kernel",
    "validate_kernel",
]
