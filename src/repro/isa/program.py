"""Kernel: a complete native program plus its static resource needs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IsaError
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode

#: Shared-memory bytes the CUDA ABI reserves per block (parameters,
#: block indices, etc.).  Chosen to reproduce the paper's Table 2
#: shared-memory footprints; see DESIGN.md.
ABI_SHARED_OVERHEAD = 64


@dataclass(frozen=True)
class Kernel:
    """An immutable native-code kernel.

    ``params`` are launch-time scalar arguments (base addresses, sizes);
    at launch each is materialized into the register named by
    ``param_regs``.  ``shared_memory_words`` is the *data* shared-memory
    footprint in 4-byte words; the ABI overhead is added on top when the
    occupancy calculator asks for bytes.
    """

    name: str
    instructions: tuple[Instruction, ...]
    labels: dict[str, int] = field(default_factory=dict)
    params: tuple[str, ...] = ()
    param_regs: dict[str, int] = field(default_factory=dict)
    num_registers: int = 0
    num_predicates: int = 0
    shared_memory_words: int = 0

    def __post_init__(self) -> None:
        if not self.instructions:
            raise IsaError("a kernel needs at least one instruction")
        for name, index in self.labels.items():
            if not 0 <= index <= len(self.instructions):
                raise IsaError(f"label {name!r} points outside the program")
        for param in self.params:
            if param not in self.param_regs:
                raise IsaError(f"parameter {param!r} has no register binding")

    @property
    def shared_memory_bytes(self) -> int:
        """Static shared memory per block, including ABI overhead."""
        return self.shared_memory_words * 4 + ABI_SHARED_OVERHEAD

    def label_for(self, index: int) -> str | None:
        """Return a label that points at ``index``, if any."""
        for name, target in self.labels.items():
            if target == index:
                return name
        return None

    def count_static(self, opcode: Opcode) -> int:
        """Number of static occurrences of an opcode."""
        return sum(1 for instr in self.instructions if instr.opcode is opcode)

    def __len__(self) -> int:
        return len(self.instructions)
