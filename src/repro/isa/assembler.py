"""Textual assembly: format kernels to text and parse them back.

This is the Decuda/cudasm analogue: a human-readable, round-trippable
view of native code.  Grammar (one item per line)::

    .kernel <name>
    .params <name> <name> ...
    .regs <count>
    .preds <count>
    .smem <words>
    <label>:
    [@[!]p<idx>] <mnemonic>[.<cmp>] [operand, operand, ...]

Operands: ``r3``, ``p1``, ``%tid``, ``3.5``, ``-2``, ``g[r3+0x10]``,
``s[0x40]``, ``s[r2]``.  Branches name their label as the sole operand.
"""

from __future__ import annotations

import re

from repro.errors import AssemblyError
from repro.isa.instructions import (
    Imm,
    Instruction,
    MemRef,
    Operand,
    Pred,
    Reg,
    Special,
)
from repro.isa.opcodes import Opcode, OpKind, opcode_from_mnemonic
from repro.isa.program import Kernel

_MEMREF_RE = re.compile(
    r"^(?P<space>[gs])\[\s*(?:(?P<base>r\d+))?\s*"
    r"(?:(?P<plus>\+)?\s*(?P<offset>0x[0-9a-fA-F]+|\d+))?\s*\]$"
)
_LABEL_RE = re.compile(r"^(?P<name>[A-Za-z_][\w.$]*):$")
_GUARD_RE = re.compile(r"^@(?P<neg>!)?p(?P<idx>\d+)$")


def format_kernel(kernel: Kernel) -> str:
    """Render a kernel as assembly text."""
    lines = [f".kernel {kernel.name}"]
    if kernel.params:
        lines.append(".params " + " ".join(kernel.params))
    lines.append(f".regs {kernel.num_registers}")
    lines.append(f".preds {kernel.num_predicates}")
    lines.append(f".smem {kernel.shared_memory_words}")
    labels_at: dict[int, list[str]] = {}
    for name, index in kernel.labels.items():
        labels_at.setdefault(index, []).append(name)
    for index, instr in enumerate(kernel.instructions):
        for name in sorted(labels_at.get(index, ())):
            lines.append(f"{name}:")
        lines.append(f"    {instr}")
    for name in sorted(labels_at.get(len(kernel.instructions), ())):
        lines.append(f"{name}:")
    return "\n".join(lines) + "\n"


def parse_kernel(text: str) -> Kernel:
    """Parse assembly text back into a Kernel."""
    name = None
    params: tuple[str, ...] = ()
    num_regs = 0
    num_preds = 0
    smem_words = 0
    instructions: list[Instruction] = []
    labels: dict[str, int] = {}

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].split("//", 1)[0].strip()
        if not line:
            continue
        try:
            if line.startswith(".kernel"):
                name = _directive_value(line, ".kernel")
            elif line.startswith(".params"):
                params = tuple(line.split()[1:])
            elif line.startswith(".regs"):
                num_regs = int(_directive_value(line, ".regs"))
            elif line.startswith(".preds"):
                num_preds = int(_directive_value(line, ".preds"))
            elif line.startswith(".smem"):
                smem_words = int(_directive_value(line, ".smem"))
            elif _LABEL_RE.match(line):
                label = _LABEL_RE.match(line).group("name")
                if label in labels:
                    raise AssemblyError(f"duplicate label {label!r}")
                labels[label] = len(instructions)
            else:
                instructions.append(_parse_instruction(line))
        except AssemblyError:
            raise
        except Exception as exc:
            raise AssemblyError(f"line {line_no}: {raw.strip()!r}: {exc}") from exc

    if name is None:
        raise AssemblyError("missing .kernel directive")
    param_regs = {p: i for i, p in enumerate(params)}
    return Kernel(
        name=name,
        instructions=tuple(instructions),
        labels=labels,
        params=params,
        param_regs=param_regs,
        num_registers=num_regs,
        num_predicates=num_preds,
        shared_memory_words=smem_words,
    )


def _directive_value(line: str, directive: str) -> str:
    parts = line.split()
    if len(parts) != 2 or parts[0] != directive:
        raise AssemblyError(f"malformed directive: {line!r}")
    return parts[1]


def _parse_instruction(line: str) -> Instruction:
    guard = None
    tokens = line.split(None, 1)
    head = tokens[0]
    match = _GUARD_RE.match(head)
    if match:
        guard = (Pred(int(match.group("idx"))), match.group("neg") is None)
        if len(tokens) < 2:
            raise AssemblyError("guard without instruction")
        tokens = tokens[1].split(None, 1)
        head = tokens[0]

    cmp = None
    if "." in head:
        mnemonic, cmp = head.split(".", 1)
    else:
        mnemonic = head
    opcode = opcode_from_mnemonic(mnemonic)

    operand_text = tokens[1] if len(tokens) > 1 else ""
    operands = [t.strip() for t in operand_text.split(",") if t.strip()]

    if opcode.kind == OpKind.BRANCH:
        if len(operands) != 1:
            raise AssemblyError("bra takes exactly one label operand")
        return Instruction(opcode, target=operands[0], guard=guard)
    if opcode.kind in (OpKind.BARRIER, OpKind.EXIT, OpKind.NOP):
        if operands:
            raise AssemblyError(f"{mnemonic} takes no operands")
        return Instruction(opcode, guard=guard)

    parsed = [_parse_operand(t) for t in operands]
    if opcode.kind in (OpKind.STORE_GLOBAL, OpKind.STORE_SHARED):
        if len(parsed) != 2 or not isinstance(parsed[0], MemRef):
            raise AssemblyError(f"{mnemonic} expects: memref, value")
        return Instruction(opcode, dst=parsed[0], srcs=(parsed[1],), guard=guard)
    if not parsed:
        raise AssemblyError(f"{mnemonic} requires a destination")
    dst, srcs = parsed[0], tuple(parsed[1:])
    if not isinstance(dst, (Reg, Pred)):
        raise AssemblyError(f"{mnemonic} destination must be a register")
    return Instruction(opcode, dst=dst, srcs=srcs, guard=guard, cmp=cmp)


def _parse_operand(text: str) -> Operand:
    if text.startswith("%"):
        return Special(text[1:])
    if re.fullmatch(r"r\d+", text):
        return Reg(int(text[1:]))
    if re.fullmatch(r"p\d+", text):
        return Pred(int(text[1:]))
    match = _MEMREF_RE.match(text)
    if match:
        space = "global" if match.group("space") == "g" else "shared"
        base = Reg(int(match.group("base")[1:])) if match.group("base") else None
        offset_text = match.group("offset")
        offset = int(offset_text, 0) if offset_text else 0
        return MemRef(space, base, offset)
    try:
        if re.fullmatch(r"[+-]?\d+", text):
            return Imm(int(text))
        return Imm(float(text))
    except ValueError:
        raise AssemblyError(f"cannot parse operand {text!r}") from None
