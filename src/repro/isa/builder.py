"""KernelBuilder: a fluent authoring API for native kernels.

The builder plays the role of the paper's hand-assembly workflow
(Decuda + cudasm + CUBIN embedding): it lets library code construct
exact native instruction sequences, free from compiler interference,
while tracking register allocation and labels.

Example::

    b = KernelBuilder("axpy", params=("x", "y", "alpha", "n"))
    idx = b.reg()
    b.imad(idx, b.tid, Imm(4), b.param("x"))
    val = b.reg()
    b.ldg(val, idx)
    b.fmad(val, val, b.param("alpha"), val)
    ...
    b.exit()
    kernel = b.build()
"""

from __future__ import annotations

import contextlib
from collections.abc import Iterator

from repro.errors import IsaError
from repro.isa.instructions import (
    CTAID_X,
    CTAID_Y,
    NCTAID_X,
    NCTAID_Y,
    NTID,
    TID,
    Imm,
    Instruction,
    MemRef,
    Operand,
    Pred,
    Reg,
)
from repro.isa.opcodes import Opcode
from repro.isa.program import Kernel


def _as_operand(value: Operand | int | float) -> Operand:
    if isinstance(value, (int, float)):
        return Imm(value)
    return value


class KernelBuilder:
    """Accumulates instructions and resources, then builds a Kernel."""

    #: Specials re-exported for convenience.
    tid = TID
    ntid = NTID
    ctaid_x = CTAID_X
    ctaid_y = CTAID_Y
    nctaid_x = NCTAID_X
    nctaid_y = NCTAID_Y

    def __init__(self, name: str, params: tuple[str, ...] = ()) -> None:
        self.name = name
        self._params = tuple(params)
        self._instructions: list[Instruction] = []
        self._labels: dict[str, int] = {}
        self._next_reg = 0
        self._next_pred = 0
        self._shared_words = 0
        self._label_counter = 0
        self._param_regs = {p: self.reg().index for p in self._params}

    # ------------------------------------------------------------------
    # resources
    # ------------------------------------------------------------------
    def reg(self) -> Reg:
        """Allocate a fresh general register."""
        reg = Reg(self._next_reg)
        self._next_reg += 1
        return reg

    def regs(self, count: int) -> list[Reg]:
        """Allocate ``count`` fresh registers."""
        return [self.reg() for _ in range(count)]

    def pred(self) -> Pred:
        """Allocate a fresh predicate register."""
        pred = Pred(self._next_pred)
        self._next_pred += 1
        return pred

    def param(self, name: str) -> Reg:
        """The register holding a launch parameter."""
        try:
            return Reg(self._param_regs[name])
        except KeyError:
            raise IsaError(f"kernel has no parameter {name!r}") from None

    def alloc_shared(self, words: int) -> int:
        """Reserve ``words`` 4-byte words of shared memory; returns the
        byte offset of the reservation."""
        if words <= 0:
            raise IsaError("shared allocation must be positive")
        offset = self._shared_words * 4
        self._shared_words += words
        return offset

    # ------------------------------------------------------------------
    # labels & control
    # ------------------------------------------------------------------
    def fresh_label(self, hint: str = "L") -> str:
        self._label_counter += 1
        return f"{hint}{self._label_counter}"

    def label(self, name: str | None = None) -> str:
        """Place a label at the current position."""
        name = name or self.fresh_label()
        if name in self._labels:
            raise IsaError(f"label {name!r} already placed")
        self._labels[name] = len(self._instructions)
        return name

    def emit(self, instr: Instruction) -> None:
        """Append a hand-constructed instruction (e.g. guarded forms)."""
        self._instructions.append(instr)

    # Backwards-compatible internal alias.
    _emit = emit

    def bra(self, target: str, guard: tuple[Pred, bool] | None = None) -> None:
        self._emit(Instruction(Opcode.BRA, target=target, guard=guard))

    def bar(self) -> None:
        self._emit(Instruction(Opcode.BAR))

    def exit(self) -> None:
        self._emit(Instruction(Opcode.EXIT))

    def nop(self) -> None:
        self._emit(Instruction(Opcode.NOP))

    @contextlib.contextmanager
    def counted_loop(self, count: "int | Reg | Special") -> Iterator[Reg]:
        """Emit a canonical down-counting loop around the body.

        Produces the bookkeeping a compiler would: initialize a counter,
        decrement, compare, and conditionally branch back.  Yields the
        counter register.  ``count`` may be a compile-time constant or a
        register/special holding the trip count at launch.
        """
        if isinstance(count, (int, float)):
            if count <= 0:
                raise IsaError("loop count must be positive")
            count = Imm(int(count))
        counter = self.reg()
        self.mov(counter, count)
        top = self.label()
        yield counter
        self.iadd(counter, counter, Imm(-1))
        pred = self.pred()
        self.isetp(pred, "gt", counter, Imm(0))
        self.bra(top, guard=(pred, True))

    @contextlib.contextmanager
    def if_then(self, pred: Pred, value: bool = True) -> Iterator[None]:
        """Guard a region: lanes where ``pred != value`` skip the body."""
        skip = self.fresh_label("SKIP")
        self.bra(skip, guard=(pred, not value))
        yield
        self.label(skip)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def _arith(self, opcode: Opcode, dst: Reg, *srcs: Operand | int | float) -> None:
        self._emit(
            Instruction(opcode, dst=dst, srcs=tuple(_as_operand(s) for s in srcs))
        )

    def mov(self, dst: Reg, src: Operand | int | float) -> None:
        self._arith(Opcode.MOV, dst, src)

    def fadd(self, dst: Reg, a, b) -> None:
        self._arith(Opcode.FADD, dst, a, b)

    def fmul(self, dst: Reg, a, b) -> None:
        self._arith(Opcode.FMUL, dst, a, b)

    def fmad(self, dst: Reg, a, b, c) -> None:
        self._arith(Opcode.FMAD, dst, a, b, c)

    def fneg(self, dst: Reg, a) -> None:
        self._arith(Opcode.FNEG, dst, a)

    def rcp(self, dst: Reg, a) -> None:
        self._arith(Opcode.RCP, dst, a)

    def dadd(self, dst: Reg, a, b) -> None:
        self._arith(Opcode.DADD, dst, a, b)

    def dmul(self, dst: Reg, a, b) -> None:
        self._arith(Opcode.DMUL, dst, a, b)

    def dfma(self, dst: Reg, a, b, c) -> None:
        self._arith(Opcode.DFMA, dst, a, b, c)

    def iadd(self, dst: Reg, a, b) -> None:
        self._arith(Opcode.IADD, dst, a, b)

    def isub(self, dst: Reg, a, b) -> None:
        self._arith(Opcode.ISUB, dst, a, b)

    def imul(self, dst: Reg, a, b) -> None:
        self._arith(Opcode.IMUL, dst, a, b)

    def imad(self, dst: Reg, a, b, c) -> None:
        self._arith(Opcode.IMAD, dst, a, b, c)

    def ishl(self, dst: Reg, a, b) -> None:
        self._arith(Opcode.ISHL, dst, a, b)

    def ishr(self, dst: Reg, a, b) -> None:
        self._arith(Opcode.ISHR, dst, a, b)

    def iand(self, dst: Reg, a, b) -> None:
        self._arith(Opcode.IAND, dst, a, b)

    def imin(self, dst: Reg, a, b) -> None:
        self._arith(Opcode.IMIN, dst, a, b)

    def imax(self, dst: Reg, a, b) -> None:
        self._arith(Opcode.IMAX, dst, a, b)

    def isetp(self, dst: Pred, cmp: str, a, b) -> None:
        self._emit(
            Instruction(
                Opcode.ISETP,
                dst=dst,
                srcs=(_as_operand(a), _as_operand(b)),
                cmp=cmp,
            )
        )

    def fsetp(self, dst: Pred, cmp: str, a, b) -> None:
        self._emit(
            Instruction(
                Opcode.FSETP,
                dst=dst,
                srcs=(_as_operand(a), _as_operand(b)),
                cmp=cmp,
            )
        )

    def sel(self, dst: Reg, pred: Pred, a, b) -> None:
        self._emit(
            Instruction(
                Opcode.SEL,
                dst=dst,
                srcs=(pred, _as_operand(a), _as_operand(b)),
            )
        )

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------
    def gmem(self, base: Reg, offset: int = 0) -> MemRef:
        return MemRef("global", base, offset)

    def smem(self, base: Reg | None = None, offset: int = 0) -> MemRef:
        return MemRef("shared", base, offset)

    def ldg(self, dst: Reg, base: Reg, offset: int = 0) -> None:
        self._emit(Instruction(Opcode.LDG, dst=dst, srcs=(self.gmem(base, offset),)))

    def stg(self, base: Reg, src: Operand | int | float, offset: int = 0) -> None:
        self._emit(
            Instruction(
                Opcode.STG, dst=self.gmem(base, offset), srcs=(_as_operand(src),)
            )
        )

    def lds(self, dst: Reg, base: Reg | None = None, offset: int = 0) -> None:
        self._emit(Instruction(Opcode.LDS, dst=dst, srcs=(self.smem(base, offset),)))

    def sts(
        self,
        src: Operand | int | float,
        base: Reg | None = None,
        offset: int = 0,
    ) -> None:
        self._emit(
            Instruction(
                Opcode.STS, dst=self.smem(base, offset), srcs=(_as_operand(src),)
            )
        )

    # ------------------------------------------------------------------
    # finish
    # ------------------------------------------------------------------
    def build(self) -> Kernel:
        """Validate and freeze the program into a Kernel."""
        from repro.isa.validate import validate_kernel

        instructions = list(self._instructions)
        if not instructions or instructions[-1].opcode is not Opcode.EXIT:
            instructions.append(Instruction(Opcode.EXIT))
        kernel = Kernel(
            name=self.name,
            instructions=tuple(instructions),
            labels=dict(self._labels),
            params=self._params,
            param_regs=dict(self._param_regs),
            num_registers=self._next_reg,
            num_predicates=self._next_pred,
            shared_memory_words=self._shared_words,
        )
        validate_kernel(kernel)
        return kernel
