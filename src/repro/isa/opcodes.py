"""Native instruction set: opcodes and their classification.

The paper classifies native (Decuda-level) instructions by how many
functional units per SM can execute them (Table 1):

==========  ================  ============================
Type        Functional units  Example instructions
==========  ================  ============================
Type I      10                mul
Type II     8                 mov, add, mad
Type III    4                 sin, cos, log, rcp
Type IV     1                 double-precision floating point
==========  ================  ============================

Memory and control instructions occupy an issue slot like a Type II
instruction (they are dispatched by the same front end); their *data*
cost is accounted by the shared/global memory components of the model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import IsaError


class OpKind(enum.Enum):
    """Broad execution class of an opcode."""

    ARITH = "arith"
    LOAD_GLOBAL = "load_global"
    STORE_GLOBAL = "store_global"
    LOAD_SHARED = "load_shared"
    STORE_SHARED = "store_shared"
    BRANCH = "branch"
    BARRIER = "barrier"
    EXIT = "exit"
    NOP = "nop"
    SETP = "setp"
    SELECT = "select"


@dataclass(frozen=True)
class OpInfo:
    """Static properties of one opcode."""

    mnemonic: str
    kind: OpKind
    instr_type: str  # 'I' | 'II' | 'III' | 'IV' (pipeline cost class)
    num_srcs: int
    writes_register: bool = True
    is_float: bool = True


class Opcode(enum.Enum):
    """Every native instruction the simulator understands."""

    # -- single-precision floating point -------------------------------
    FMUL = OpInfo("fmul", OpKind.ARITH, "I", 2)
    FADD = OpInfo("fadd", OpKind.ARITH, "II", 2)
    FMAD = OpInfo("fmad", OpKind.ARITH, "II", 3)
    MOV = OpInfo("mov", OpKind.ARITH, "II", 1)
    FNEG = OpInfo("fneg", OpKind.ARITH, "II", 1)
    FMIN = OpInfo("fmin", OpKind.ARITH, "II", 2)
    FMAX = OpInfo("fmax", OpKind.ARITH, "II", 2)
    # -- transcendental / special-function unit -------------------------
    RCP = OpInfo("rcp", OpKind.ARITH, "III", 1)
    SIN = OpInfo("sin", OpKind.ARITH, "III", 1)
    COS = OpInfo("cos", OpKind.ARITH, "III", 1)
    LG2 = OpInfo("lg2", OpKind.ARITH, "III", 1)
    EX2 = OpInfo("ex2", OpKind.ARITH, "III", 1)
    RSQRT = OpInfo("rsqrt", OpKind.ARITH, "III", 1)
    # -- double precision ------------------------------------------------
    DADD = OpInfo("dadd", OpKind.ARITH, "IV", 2)
    DMUL = OpInfo("dmul", OpKind.ARITH, "IV", 2)
    DFMA = OpInfo("dfma", OpKind.ARITH, "IV", 3)
    # -- integer ---------------------------------------------------------
    IADD = OpInfo("iadd", OpKind.ARITH, "II", 2, is_float=False)
    ISUB = OpInfo("isub", OpKind.ARITH, "II", 2, is_float=False)
    IMUL = OpInfo("imul", OpKind.ARITH, "I", 2, is_float=False)
    IMAD = OpInfo("imad", OpKind.ARITH, "II", 3, is_float=False)
    ISHL = OpInfo("ishl", OpKind.ARITH, "II", 2, is_float=False)
    ISHR = OpInfo("ishr", OpKind.ARITH, "II", 2, is_float=False)
    IAND = OpInfo("iand", OpKind.ARITH, "II", 2, is_float=False)
    IOR = OpInfo("ior", OpKind.ARITH, "II", 2, is_float=False)
    IXOR = OpInfo("ixor", OpKind.ARITH, "II", 2, is_float=False)
    IMIN = OpInfo("imin", OpKind.ARITH, "II", 2, is_float=False)
    IMAX = OpInfo("imax", OpKind.ARITH, "II", 2, is_float=False)
    # -- predicates and selection -----------------------------------------
    ISETP = OpInfo("isetp", OpKind.SETP, "II", 2, is_float=False)
    FSETP = OpInfo("fsetp", OpKind.SETP, "II", 2)
    SEL = OpInfo("sel", OpKind.SELECT, "II", 3)
    # -- memory ------------------------------------------------------------
    LDG = OpInfo("ldg", OpKind.LOAD_GLOBAL, "II", 1)
    STG = OpInfo("stg", OpKind.STORE_GLOBAL, "II", 2, writes_register=False)
    LDS = OpInfo("lds", OpKind.LOAD_SHARED, "II", 1)
    STS = OpInfo("sts", OpKind.STORE_SHARED, "II", 2, writes_register=False)
    # -- control -------------------------------------------------------------
    BRA = OpInfo("bra", OpKind.BRANCH, "II", 0, writes_register=False)
    BAR = OpInfo("bar", OpKind.BARRIER, "II", 0, writes_register=False)
    EXIT = OpInfo("exit", OpKind.EXIT, "II", 0, writes_register=False)
    NOP = OpInfo("nop", OpKind.NOP, "II", 0, writes_register=False)

    @property
    def info(self) -> OpInfo:
        return self.value

    @property
    def mnemonic(self) -> str:
        return self.value.mnemonic

    @property
    def kind(self) -> OpKind:
        return self.value.kind

    @property
    def instr_type(self) -> str:
        """Pipeline cost class ('I'..'IV'), paper Table 1."""
        return self.value.instr_type

    @property
    def is_memory(self) -> bool:
        return self.value.kind in (
            OpKind.LOAD_GLOBAL,
            OpKind.STORE_GLOBAL,
            OpKind.LOAD_SHARED,
            OpKind.STORE_SHARED,
        )

    @property
    def is_control(self) -> bool:
        return self.value.kind in (OpKind.BRANCH, OpKind.BARRIER, OpKind.EXIT)


#: Mnemonic -> Opcode lookup for the assembler.
MNEMONICS: dict[str, Opcode] = {op.mnemonic: op for op in Opcode}

#: Comparison operators accepted by isetp/fsetp.
COMPARISONS = ("lt", "le", "gt", "ge", "eq", "ne")


def opcode_from_mnemonic(text: str) -> Opcode:
    """Look up an opcode by its textual mnemonic."""
    try:
        return MNEMONICS[text.lower()]
    except KeyError:
        raise IsaError(f"unknown mnemonic: {text!r}") from None


#: Example instructions per type, as printed in Table 1.
TABLE1_EXAMPLES = {
    "I": ("mul",),
    "II": ("mov", "add", "mad"),
    "III": ("sin", "cos", "log", "rcp"),
    "IV": ("double precision floating point",),
}
