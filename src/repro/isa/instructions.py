"""Instruction and operand representations for the native ISA.

Operands model the GT200 register file closely enough for the paper's
purposes: general registers, predicate registers, immediates, read-only
special registers (thread/block indices), and memory references.  As on
real GT200 hardware, arithmetic instructions may take one shared-memory
operand directly (``fmad r4, r2, s[0x40], r4``) -- this is what makes
dense matrix multiply's shared-transaction count track its MAD count
(paper Fig. 4a).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IsaError
from repro.isa.opcodes import COMPARISONS, Opcode, OpKind


@dataclass(frozen=True)
class Reg:
    """General-purpose register ``r<index>`` (32-bit on hardware)."""

    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise IsaError("register index must be non-negative")

    def __str__(self) -> str:
        return f"r{self.index}"


@dataclass(frozen=True)
class Pred:
    """Predicate register ``p<index>``."""

    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise IsaError("predicate index must be non-negative")

    def __str__(self) -> str:
        return f"p{self.index}"


@dataclass(frozen=True)
class Imm:
    """Immediate constant (int or float)."""

    value: float

    def __str__(self) -> str:
        return str(self.value)


_SPECIAL_NAMES = (
    "tid",  # thread index within the block (1-D blocks)
    "ntid",  # threads per block
    "ctaid_x",  # block index, x
    "ctaid_y",  # block index, y
    "nctaid_x",  # grid size, x
    "nctaid_y",  # grid size, y
)


@dataclass(frozen=True)
class Special:
    """Read-only special register (e.g. ``%tid``, ``%ctaid_x``)."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in _SPECIAL_NAMES:
            raise IsaError(
                f"unknown special register {self.name!r}; "
                f"expected one of {_SPECIAL_NAMES}"
            )

    def __str__(self) -> str:
        return f"%{self.name}"


#: Singleton specials for convenient import.
TID = Special("tid")
NTID = Special("ntid")
CTAID_X = Special("ctaid_x")
CTAID_Y = Special("ctaid_y")
NCTAID_X = Special("nctaid_x")
NCTAID_Y = Special("nctaid_y")


@dataclass(frozen=True)
class MemRef:
    """A memory reference ``space[base + offset]`` in bytes.

    ``space`` is ``'global'`` or ``'shared'``; ``base`` is an optional
    register; ``offset`` an immediate byte offset.
    """

    space: str
    base: Reg | None = None
    offset: int = 0

    def __post_init__(self) -> None:
        if self.space not in ("global", "shared"):
            raise IsaError(f"unknown memory space {self.space!r}")
        if self.offset < 0:
            raise IsaError("memory offset must be non-negative")
        if self.base is None and self.space == "global":
            raise IsaError("global memory references require a base register")

    def __str__(self) -> str:
        prefix = "g" if self.space == "global" else "s"
        if self.base is None:
            return f"{prefix}[{hex(self.offset)}]"
        if self.offset:
            return f"{prefix}[{self.base}+{hex(self.offset)}]"
        return f"{prefix}[{self.base}]"


Operand = Reg | Pred | Imm | Special | MemRef


@dataclass(frozen=True)
class Instruction:
    """One native instruction.

    ``dst`` is a :class:`Reg` (arithmetic/loads), :class:`Pred` (setp),
    :class:`MemRef` (stores), or ``None`` (control).  ``guard`` predicates
    execution: ``(Pred, expected_value)``.  ``target`` names the label of
    a branch.  ``cmp`` holds the comparison of a setp.
    """

    opcode: Opcode
    dst: Reg | Pred | MemRef | None = None
    srcs: tuple[Operand, ...] = ()
    guard: tuple[Pred, bool] | None = None
    target: str | None = None
    cmp: str | None = None

    def __post_init__(self) -> None:
        info = self.opcode.info
        kind = self.opcode.kind
        if kind == OpKind.BRANCH:
            if not self.target:
                raise IsaError("bra requires a target label")
        elif self.target is not None:
            raise IsaError(f"{self.opcode.mnemonic} cannot have a branch target")
        if kind == OpKind.SETP:
            if self.cmp not in COMPARISONS:
                raise IsaError(
                    f"setp comparison must be one of {COMPARISONS}, got {self.cmp!r}"
                )
            if not isinstance(self.dst, Pred):
                raise IsaError("setp must write a predicate register")
        elif self.cmp is not None:
            raise IsaError(f"{self.opcode.mnemonic} cannot carry a comparison")
        if kind in (OpKind.STORE_GLOBAL, OpKind.STORE_SHARED):
            if not isinstance(self.dst, MemRef):
                raise IsaError("stores must write a memory reference")
            expected = "global" if kind == OpKind.STORE_GLOBAL else "shared"
            if self.dst.space != expected:
                raise IsaError(f"{self.opcode.mnemonic} must target {expected} memory")
        elif info.writes_register and kind != OpKind.SETP:
            if not isinstance(self.dst, Reg):
                raise IsaError(f"{self.opcode.mnemonic} must write a register")
        if not info.writes_register and kind not in (
            OpKind.STORE_GLOBAL,
            OpKind.STORE_SHARED,
        ):
            if self.dst is not None:
                raise IsaError(f"{self.opcode.mnemonic} takes no destination")
        self._check_srcs()

    def _check_srcs(self) -> None:
        info = self.opcode.info
        kind = self.opcode.kind
        if kind in (OpKind.LOAD_GLOBAL, OpKind.LOAD_SHARED):
            if len(self.srcs) != 1 or not isinstance(self.srcs[0], MemRef):
                raise IsaError(f"{self.opcode.mnemonic} takes one memory source")
            expected = "global" if kind == OpKind.LOAD_GLOBAL else "shared"
            if self.srcs[0].space != expected:
                raise IsaError(f"{self.opcode.mnemonic} must read {expected} memory")
            return
        if kind in (OpKind.STORE_GLOBAL, OpKind.STORE_SHARED):
            if len(self.srcs) != 1:
                raise IsaError(f"{self.opcode.mnemonic} takes one value source")
            return
        if kind == OpKind.SELECT:
            if len(self.srcs) != 3 or not isinstance(self.srcs[0], Pred):
                raise IsaError("sel takes a predicate and two value sources")
            return
        if kind == OpKind.ARITH or kind == OpKind.SETP:
            if len(self.srcs) != info.num_srcs:
                raise IsaError(
                    f"{self.opcode.mnemonic} takes {info.num_srcs} sources, "
                    f"got {len(self.srcs)}"
                )
            shared_operands = [
                s
                for s in self.srcs
                if isinstance(s, MemRef)
            ]
            for mem in shared_operands:
                if mem.space != "shared":
                    raise IsaError(
                        "arithmetic may only take shared-memory operands"
                    )
            if len(shared_operands) > 1:
                raise IsaError("at most one shared-memory operand per instruction")
            return
        if self.srcs:
            raise IsaError(f"{self.opcode.mnemonic} takes no sources")

    @property
    def shared_operand(self) -> MemRef | None:
        """The shared-memory operand of an arithmetic instruction, if any."""
        if self.opcode.kind not in (OpKind.ARITH, OpKind.SETP, OpKind.SELECT):
            return None
        for src in self.srcs:
            if isinstance(src, MemRef):
                return src
        return None

    def registers_read(self) -> tuple[int, ...]:
        """Indices of general registers this instruction reads."""
        regs: list[int] = []
        for src in self.srcs:
            if isinstance(src, Reg):
                regs.append(src.index)
            elif isinstance(src, MemRef) and src.base is not None:
                regs.append(src.base.index)
        if isinstance(self.dst, MemRef) and self.dst.base is not None:
            regs.append(self.dst.base.index)
        return tuple(regs)

    def registers_written(self) -> tuple[int, ...]:
        """Indices of general registers this instruction writes."""
        if isinstance(self.dst, Reg):
            return (self.dst.index,)
        return ()

    def __str__(self) -> str:
        parts = []
        if self.guard is not None:
            pred, want = self.guard
            parts.append(f"@{'' if want else '!'}{pred}")
        name = self.opcode.mnemonic
        if self.cmp:
            name = f"{name}.{self.cmp}"
        parts.append(name)
        operand_texts: list[str] = []
        if self.target:
            operand_texts.append(self.target)
        if self.dst is not None:
            operand_texts.append(str(self.dst))
        operand_texts.extend(str(s) for s in self.srcs)
        text = " ".join(parts)
        if operand_texts:
            text += " " + ", ".join(operand_texts)
        return text
