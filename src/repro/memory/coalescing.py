"""Global-memory transaction simulator (paper Section 4.3).

CUDA compute-capability 1.2/1.3 issues memory transactions at half-warp
granularity with this coalescing protocol:

1. find the memory segment containing the address requested by the
   lowest-numbered unserved thread;
2. find all other threads whose requested address is in that segment;
3. reduce the segment size if possible;
4. repeat until all threads in the half-warp are served.

The minimum segment the hardware supports for 4-byte words is 32 bytes;
the paper's what-if studies also evaluate hypothetical 16-byte and
4-byte granularities (Fig. 11), which this simulator supports through
``TransactionConfig.min_segment``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.arch.specs import HALF_WARP
from repro.errors import ModelError


@dataclass(frozen=True)
class TransactionConfig:
    """Coalescing parameters."""

    min_segment: int = 32
    max_segment: int = 128
    halfwarp: int = HALF_WARP

    def __post_init__(self) -> None:
        for name in ("min_segment", "max_segment"):
            value = getattr(self, name)
            if value <= 0 or value & (value - 1):
                raise ModelError(f"{name} must be a positive power of two")
        if self.min_segment > self.max_segment:
            raise ModelError("min_segment exceeds max_segment")
        if self.halfwarp <= 0:
            raise ModelError("halfwarp must be positive")


#: Hardware configuration of the GTX 285.
DEFAULT_CONFIG = TransactionConfig()


@dataclass(frozen=True)
class Transaction:
    """One hardware memory transaction: an aligned segment."""

    address: int
    size: int

    @property
    def end(self) -> int:
        return self.address + self.size

    def contains(self, address: int, access_bytes: int) -> bool:
        return self.address <= address and address + access_bytes <= self.end


def initial_segment_size(access_bytes: int, config: TransactionConfig) -> int:
    """Starting segment size for an access width (CUDA 1.2/1.3 rule)."""
    if access_bytes == 1:
        size = 32
    elif access_bytes == 2:
        size = 64
    else:
        size = 128
    return max(config.min_segment, min(size, config.max_segment))


def coalesce_halfwarp(
    addresses: Sequence[int],
    access_bytes: int = 4,
    config: TransactionConfig = DEFAULT_CONFIG,
) -> list[Transaction]:
    """Coalesce one half-warp's requested addresses into transactions.

    ``addresses`` holds the byte addresses of the *active* threads, in
    thread order.  Returns the issued transactions in order.
    """
    if access_bytes <= 0:
        raise ModelError("access_bytes must be positive")
    pending = [int(a) for a in addresses]
    transactions: list[Transaction] = []
    start_size = initial_segment_size(access_bytes, config)
    while pending:
        lead = pending[0]
        size = start_size
        base = lead - (lead % size)
        in_segment = [a for a in pending if base <= a and a + access_bytes <= base + size]
        # Step 3: shrink the segment while all covered accesses fit a half.
        while size // 2 >= config.min_segment and size // 2 >= access_bytes:
            half = size // 2
            low_base, high_base = base, base + half
            if all(a + access_bytes <= low_base + half for a in in_segment):
                size = half
            elif all(a >= high_base for a in in_segment):
                base, size = high_base, half
            else:
                break
        transactions.append(Transaction(base, size))
        pending = [
            a
            for a in pending
            if not (base <= a and a + access_bytes <= base + size)
        ]
    return transactions


def coalesce_warp(
    addresses: Sequence[int],
    active: Sequence[bool] | None = None,
    access_bytes: int = 4,
    config: TransactionConfig = DEFAULT_CONFIG,
) -> list[Transaction]:
    """Coalesce a full warp: each half-warp is served independently."""
    n = len(addresses)
    if active is None:
        active = [True] * n
    transactions: list[Transaction] = []
    for start in range(0, n, config.halfwarp):
        group = [
            int(addresses[i])
            for i in range(start, min(start + config.halfwarp, n))
            if active[i]
        ]
        if group:
            transactions.extend(coalesce_halfwarp(group, access_bytes, config))
    return transactions


def transaction_count(
    addresses: Sequence[int],
    active: Sequence[bool] | None = None,
    access_bytes: int = 4,
    config: TransactionConfig = DEFAULT_CONFIG,
) -> int:
    """Number of hardware transactions for a warp's request."""
    return len(coalesce_warp(addresses, active, access_bytes, config))


def bytes_transferred(transactions: Iterable[Transaction]) -> int:
    """Total bytes moved by a list of transactions."""
    return sum(t.size for t in transactions)
