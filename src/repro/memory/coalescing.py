"""Global-memory transaction simulator (paper Section 4.3).

CUDA compute-capability 1.2/1.3 issues memory transactions at half-warp
granularity with this coalescing protocol:

1. find the memory segment containing the address requested by the
   lowest-numbered unserved thread;
2. find all other threads whose requested address is in that segment;
3. reduce the segment size if possible;
4. repeat until all threads in the half-warp are served.

The minimum segment the hardware supports for 4-byte words is 32 bytes;
the paper's what-if studies also evaluate hypothetical 16-byte and
4-byte granularities (Fig. 11), which this simulator supports through
``TransactionConfig.min_segment``.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

from repro.arch.specs import HALF_WARP
from repro.errors import ModelError


@dataclass(frozen=True)
class TransactionConfig:
    """Coalescing parameters."""

    min_segment: int = 32
    max_segment: int = 128
    halfwarp: int = HALF_WARP

    def __post_init__(self) -> None:
        for name in ("min_segment", "max_segment"):
            value = getattr(self, name)
            if value <= 0 or value & (value - 1):
                raise ModelError(f"{name} must be a positive power of two")
        if self.min_segment > self.max_segment:
            raise ModelError("min_segment exceeds max_segment")
        if self.halfwarp <= 0:
            raise ModelError("halfwarp must be positive")


#: Hardware configuration of the GTX 285.
DEFAULT_CONFIG = TransactionConfig()


@dataclass(frozen=True)
class Transaction:
    """One hardware memory transaction: an aligned segment."""

    address: int
    size: int

    @property
    def end(self) -> int:
        return self.address + self.size

    def contains(self, address: int, access_bytes: int) -> bool:
        return self.address <= address and address + access_bytes <= self.end


def initial_segment_size(access_bytes: int, config: TransactionConfig) -> int:
    """Starting segment size for an access width (CUDA 1.2/1.3 rule)."""
    if access_bytes == 1:
        size = 32
    elif access_bytes == 2:
        size = 64
    else:
        size = 128
    return max(config.min_segment, min(size, config.max_segment))


_START_SIZE_CACHE: dict[tuple[int, int, int], int] = {}


def _start_size(access_bytes: int, config: TransactionConfig) -> int:
    """Memoized :func:`initial_segment_size`."""
    key = (access_bytes, config.min_segment, config.max_segment)
    cached = _START_SIZE_CACHE.get(key)
    if cached is None:
        cached = _START_SIZE_CACHE[key] = initial_segment_size(
            access_bytes, config
        )
    return cached


def coalesce_halfwarp(
    addresses: Sequence[int],
    access_bytes: int = 4,
    config: TransactionConfig = DEFAULT_CONFIG,
) -> list[Transaction]:
    """Coalesce one half-warp's requested addresses into transactions.

    ``addresses`` holds the byte addresses of the *active* threads, in
    thread order.  Returns the issued transactions in order.
    """
    if access_bytes <= 0:
        raise ModelError("access_bytes must be positive")
    pending = [int(a) for a in addresses]
    transactions: list[Transaction] = []
    start_size = initial_segment_size(access_bytes, config)
    while pending:
        lead = pending[0]
        size = start_size
        base = lead - (lead % size)
        in_segment = [a for a in pending if base <= a and a + access_bytes <= base + size]
        # Step 3: shrink the segment while all covered accesses fit a half.
        while size // 2 >= config.min_segment and size // 2 >= access_bytes:
            half = size // 2
            low_base, high_base = base, base + half
            if all(a + access_bytes <= low_base + half for a in in_segment):
                size = half
            elif all(a >= high_base for a in in_segment):
                base, size = high_base, half
            else:
                break
        transactions.append(Transaction(base, size))
        pending = [
            a
            for a in pending
            if not (base <= a and a + access_bytes <= base + size)
        ]
    return transactions


def coalesce_warp(
    addresses: Sequence[int],
    active: Sequence[bool] | None = None,
    access_bytes: int = 4,
    config: TransactionConfig = DEFAULT_CONFIG,
) -> list[Transaction]:
    """Coalesce a full warp: each half-warp is served independently."""
    n = len(addresses)
    if active is None:
        active = [True] * n
    transactions: list[Transaction] = []
    for start in range(0, n, config.halfwarp):
        group = [
            int(addresses[i])
            for i in range(start, min(start + config.halfwarp, n))
            if active[i]
        ]
        if group:
            transactions.extend(coalesce_halfwarp(group, access_bytes, config))
    return transactions


def transaction_count(
    addresses: "Sequence[int] | np.ndarray",
    active: "Sequence[bool] | np.ndarray | None" = None,
    access_bytes: int = 4,
    config: TransactionConfig = DEFAULT_CONFIG,
) -> "int | np.ndarray":
    """Number of hardware transactions for a warp's request.

    A 2-D ``(num_warps, warp_size)`` address array batches the protocol
    over many warps and returns an *array* of one count per warp row
    instead of a scalar.
    """
    if getattr(addresses, "ndim", 1) == 2:
        counts, _, _ = coalesce_warp_batch(addresses, active, access_bytes, config)
        return counts
    return len(coalesce_warp(addresses, active, access_bytes, config))


def coalesce_warp_batch(
    addresses: np.ndarray,
    active: np.ndarray | None = None,
    access_bytes: int = 4,
    config: TransactionConfig = DEFAULT_CONFIG,
    want_segments: bool = False,
) -> tuple[np.ndarray, np.ndarray, list[tuple[tuple[int, int], ...]] | None]:
    """Coalesce a ``(num_warps, warp_size)`` batch in one vectorized pass.

    Returns per-warp transaction counts and transferred-byte totals (and,
    when ``want_segments`` is set, each warp's ordered ``(address, size)``
    transaction list) -- row ``w`` bit-identical to
    :func:`coalesce_warp` on row ``w``.  See :func:`coalesce_warp_multi`
    for the vectorization argument (and for evaluating several
    granularities over one request at shared cost).
    """
    [(counts, nbytes, _, _, segments)] = coalesce_warp_multi(
        addresses,
        active,
        access_bytes,
        [config],
        want_segments_at=0 if want_segments else None,
    )
    return counts, nbytes, segments


def _scalar_rows(
    addresses: np.ndarray,
    active: np.ndarray,
    access_bytes: int,
    config: TransactionConfig,
) -> tuple[np.ndarray, np.ndarray, list[tuple[tuple[int, int], ...]]]:
    """Row-by-row scalar protocol (exact fallback for unaligned batches)."""
    num_warps = addresses.shape[0]
    counts = np.zeros(num_warps, dtype=np.int64)
    nbytes = np.zeros(num_warps, dtype=np.int64)
    segments: list[tuple[tuple[int, int], ...]] = []
    for w in range(num_warps):
        transactions = coalesce_warp(addresses[w], active[w], access_bytes, config)
        counts[w] = len(transactions)
        nbytes[w] = sum(t.size for t in transactions)
        segments.append(tuple((t.address, t.size) for t in transactions))
    return counts, nbytes, segments


_ARANGE_CACHE: dict[int, np.ndarray] = {}


def _arange(n: int) -> np.ndarray:
    cached = _ARANGE_CACHE.get(n)
    if cached is None:
        cached = _ARANGE_CACHE[n] = np.arange(n, dtype=np.int64)
    return cached


#: Addresses are assumed below 2**48 (device arenas are megabytes), so
#: half-warp group ids can ride the key's top bits without a data scan.
_GROUP_SHIFT = 48

_GROUP_KEY_CACHE: dict[tuple[int, int, int], np.ndarray] = {}


def _full_group_rows(num_warps: int, warp_size: int, halfwarp: int) -> np.ndarray:
    """Pre-shifted half-warp group ids for an all-active batch."""
    key = (num_warps, warp_size, halfwarp)
    cached = _GROUP_KEY_CACHE.get(key)
    if cached is None:
        lanes = _arange(num_warps * warp_size)
        rows = (lanes // warp_size) * (-(-warp_size // halfwarp)) + (
            lanes % warp_size
        ) // halfwarp
        cached = _GROUP_KEY_CACHE[key] = rows << _GROUP_SHIFT
    return cached


def coalesce_warp_multi(
    addresses: np.ndarray,
    active: np.ndarray | None,
    access_bytes: int,
    configs: Sequence[TransactionConfig],
    want_segments_at: int | None = None,
    totals_only: Sequence[int] = (),
    aligned: bool = False,
) -> list[tuple]:
    """Evaluate several coalescing configs over one ``(W, 32)`` batch.

    Returns one ``(counts, nbytes, total_txns, total_bytes, segments)``
    tuple per config; the per-warp ``counts``/``nbytes`` arrays are
    bit-identical to running :func:`coalesce_warp` per warp row with
    that config, and the totals are their sums.  ``want_segments_at``
    selects the single config whose ordered per-warp ``(address, size)``
    transaction lists are materialized (the functional simulator's
    primary granularity).  Config indices in ``totals_only`` skip the
    per-warp reduction and return ``None`` arrays with exact totals --
    the simulator's non-primary granularities only feed aggregate
    counters, so their per-warp histograms would be dead work.
    ``active=None`` means every lane is active; ``aligned=True``
    promises every active address is a multiple of ``access_bytes``
    (the simulator validates this on the memory access itself),
    skipping the alignment scan and the scalar fallback.

    The CUDA 1.2/1.3 greedy protocol vectorizes because, for accesses
    aligned to their width, the transaction serving the lowest unserved
    thread covers *exactly* the pending addresses in the same aligned
    ``start_size`` window: the partition into transactions is "group by
    window", independent of the greedy order.  The shrink loop reduces
    each window to the smallest aligned power-of-two block covering the
    window's ``[lo, hi)`` span (floored at ``min_segment``), which has
    the closed form ``2**bitlen(lo XOR (hi-1))``.  Only the *order* of
    transactions (first-touching-thread order within each half-warp) is
    greedy, and it is recovered from each group's first active lane.

    The active lanes are extracted and sorted by (half-warp row,
    address) *once*; every config then derives its windows from the
    shared sorted order, so the paper's three-granularity sweep
    (Fig. 11) costs one sort, not three.  Unaligned accesses fall back
    to the scalar protocol row by row.
    """
    if access_bytes <= 0:
        raise ModelError("access_bytes must be positive")
    if not configs:
        return []
    halfwarp = configs[0].halfwarp
    if any(config.halfwarp != halfwarp for config in configs):
        raise ModelError("coalesce_warp_multi configs must share a halfwarp")
    addresses = np.asarray(addresses, dtype=np.int64)
    num_warps, warp_size = addresses.shape
    if active is None:
        positions = _arange(addresses.size)
        addr = addresses.ravel()
    else:
        active = np.asarray(active, dtype=bool)
        positions = np.flatnonzero(active)
        if len(positions) == 0:
            zeros = np.zeros(num_warps, dtype=np.int64)
            empty = [()] * num_warps
            return [
                (zeros, zeros, 0, 0, empty if want_segments_at == i else None)
                for i, config in enumerate(configs)
            ]
        addr = addresses.ravel()[positions]
    if not aligned and access_bytes != 1 and np.any(addr % access_bytes):
        if active is None:
            active = np.ones(addresses.shape, dtype=bool)
        results = []
        for i, config in enumerate(configs):
            counts, nbytes, segments = _scalar_rows(
                addresses, active, access_bytes, config
            )
            results.append(
                (
                    counts,
                    nbytes,
                    int(counts.sum()),
                    int(nbytes.sum()),
                    segments if want_segments_at == i else None,
                )
            )
        return results

    halves = -(-warp_size // halfwarp)
    # One shared sort by (half-warp group, address): group ids ride the
    # key's top bits (addresses are far below 2**48), so a single fused
    # int64 key sorts both without scanning for the address range.
    if active is None:
        shifted = _full_group_rows(num_warps, warp_size, halfwarp)
        group_row = shifted >> _GROUP_SHIFT
    else:
        group_row = (positions // warp_size) * halves + (
            positions % warp_size
        ) // halfwarp
        shifted = group_row << _GROUP_SHIFT
    order = (shifted + addr).argsort()
    g_sorted = group_row[order]
    a_sorted = addr[order]
    n = len(order)
    group_edge = np.empty(n, dtype=bool)
    group_edge[0] = True
    np.not_equal(g_sorted[1:], g_sorted[:-1], out=group_edge[1:])

    # Configs sharing a start_size (e.g. the paper's 32B and 16B
    # granularities, both served from 128B initial windows) share their
    # whole transaction partition; only the size floor differs.
    partitions: dict[int, tuple] = {}

    def partition(start_size: int) -> tuple:
        cached = partitions.get(start_size)
        if cached is not None:
            return cached
        window = a_sorted // start_size
        first = group_edge.copy()
        first[1:] |= window[1:] != window[:-1]
        starts = np.flatnonzero(first)
        warp_of_txn = g_sorted[starts] // halves
        # Addresses are sorted within each group, so each group's span
        # is its first and last sorted entry.
        lo = a_sorted[starts]
        if start_size == access_bytes:
            # Every window holds exactly one aligned word: the segment
            # *is* the window (the paper's "ideal" 4B granularity).
            cover = None
        else:
            ends = np.empty_like(starts)
            ends[:-1] = starts[1:] - 1
            ends[-1] = n - 1
            hi = a_sorted[ends] + access_bytes
            # Smallest aligned power-of-two block covering [lo, hi):
            # 2**bitlen(lo ^ (hi - 1)), with bitlen from frexp's exact
            # exponent (spans < 2**53).
            spread = (lo ^ (hi - 1)).astype(np.float64)
            cover = np.left_shift(1, np.frexp(spread)[1])
        cached = (starts, warp_of_txn, lo, cover)
        partitions[start_size] = cached
        return cached

    results = []
    for index, config in enumerate(configs):
        start_size = _start_size(access_bytes, config)
        if start_size % access_bytes:
            counts, nbytes, segments = _scalar_rows(
                addresses, active, access_bytes, config
            )
            results.append(
                (
                    counts,
                    nbytes,
                    int(counts.sum()),
                    int(nbytes.sum()),
                    segments if want_segments_at == index else None,
                )
            )
            continue
        floor = max(config.min_segment, access_bytes)
        if (
            start_size == access_bytes
            and floor == access_bytes
            and index in totals_only
            and want_segments_at != index
        ):
            # Ideal granularity, totals only: the transaction count is
            # the number of distinct (group, word) pairs -- countable
            # straight off the shared sorted order.
            if start_size not in partitions:
                distinct = group_edge.copy()
                distinct[1:] |= a_sorted[1:] != a_sorted[:-1]
                total_txns = int(np.count_nonzero(distinct))
            else:
                total_txns = len(partitions[start_size][0])
            results.append(
                (None, None, total_txns, total_txns * access_bytes, None)
            )
            continue
        starts, warp_of_txn, lo, cover = partition(start_size)
        total_txns = len(starts)
        if cover is None and floor == access_bytes:
            size = None  # uniform access_bytes-sized segments
            total_bytes = total_txns * access_bytes
        else:
            size = (
                np.maximum(cover, floor)
                if cover is not None
                else np.full(total_txns, floor, dtype=np.int64)
            )
            total_bytes = int(size.sum())
        if index in totals_only and want_segments_at != index:
            results.append((None, None, total_txns, total_bytes, None))
            continue
        counts = np.bincount(warp_of_txn, minlength=num_warps)
        if size is None:
            nbytes = counts * access_bytes
        else:
            nbytes = np.bincount(
                warp_of_txn, weights=size, minlength=num_warps
            ).astype(np.int64)

        segment_lists = None
        if want_segments_at == index:
            if size is None:
                base = lo
                size = np.full(total_txns, access_bytes, dtype=np.int64)
            else:
                base = lo & ~(size - 1)
            first_pos = np.minimum.reduceat(positions[order], starts)
            # warp_of_txn is non-decreasing, so one fused key recovers
            # (warp, first active lane) emission order; warp boundaries
            # then come from the per-warp counts.
            emit = np.argsort(warp_of_txn * (num_warps * warp_size) + first_pos)
            bases = base[emit].tolist()
            sizes = size[emit].tolist()
            segment_lists = []
            stop = 0
            for count in counts.tolist():
                first = stop
                stop += count
                segment_lists.append(
                    tuple(zip(bases[first:stop], sizes[first:stop]))
                )
        results.append((counts, nbytes, total_txns, total_bytes, segment_lists))
    return results


def bytes_transferred(transactions: Iterable[Transaction]) -> int:
    """Total bytes moved by a list of transactions."""
    return sum(t.size for t in transactions)


# ----------------------------------------------------------------------
# closed-form counting for affine lane patterns (symbolic synthesis)
# ----------------------------------------------------------------------
def affine_transactions(
    start: int,
    stride: int,
    count: int,
    access_bytes: int = 4,
    config: TransactionConfig = DEFAULT_CONFIG,
) -> tuple[int, int]:
    """(transactions, bytes) for an affine half-warp access, closed form.

    The ``count`` active lanes request ``start + stride*i`` for
    ``i in [0, count)``.  The greedy protocol's partition is "group by
    aligned ``start_size`` window" and each window's segment is the
    smallest aligned power-of-two cover of its span, floored at
    ``min_segment`` (see :func:`coalesce_warp_multi`); for an arithmetic
    progression both are computable per *window* -- at most one step per
    emitted transaction, never one per lane -- with the dyadic
    ``2**bitlen(lo ^ (hi-1))`` cover.  Bit-identical to
    :func:`coalesce_halfwarp` on the same addresses, which the tests
    enforce against the vectorized batch protocol.

    Requires width-aligned addresses (``start`` and ``stride`` multiples
    of ``access_bytes``) -- the same precondition under which the batch
    protocol vectorizes; unaligned patterns must take the exact scalar
    path instead.
    """
    if access_bytes <= 0:
        raise ModelError("access_bytes must be positive")
    if count <= 0:
        return 0, 0
    if stride < 0:
        # The protocol depends only on the address multiset.
        start, stride = start + stride * (count - 1), -stride
    window_size = _start_size(access_bytes, config)
    if (
        window_size % access_bytes
        or start % access_bytes
        or stride % access_bytes
    ):
        raise ModelError(
            "affine_transactions requires width-aligned affine addresses"
        )
    floor = max(config.min_segment, access_bytes)
    if stride == 0:
        spread = start ^ (start + access_bytes - 1)
        return 1, max(1 << spread.bit_length(), floor)
    transactions = 0
    nbytes = 0
    index = 0
    while index < count:
        lo = start + stride * index
        window = lo // window_size
        # Last lane whose (aligned) access still starts in this window.
        last = min(
            count - 1,
            ((window + 1) * window_size - access_bytes - start) // stride,
        )
        hi = start + stride * last + access_bytes
        spread = lo ^ (hi - 1)
        transactions += 1
        nbytes += max(1 << spread.bit_length(), floor)
        index = last + 1
    return transactions, nbytes


def coalesce_warp_affine(
    addresses: "Sequence[int] | np.ndarray",
    active: "Sequence[bool] | np.ndarray | None" = None,
    access_bytes: int = 4,
    config: TransactionConfig = DEFAULT_CONFIG,
) -> tuple[int, int]:
    """(transactions, bytes) for a warp, closed form where lanes allow.

    Each half-warp whose active addresses form a width-aligned
    arithmetic progression is counted through
    :func:`affine_transactions`; any other half-warp falls back to the
    exact greedy protocol, so the result always equals
    ``coalesce_warp`` -- the closed form is an *accelerator*, never an
    approximation.
    """
    n = len(addresses)
    if active is None:
        active = [True] * n
    transactions = 0
    nbytes = 0
    for begin in range(0, n, config.halfwarp):
        group = [
            int(addresses[i])
            for i in range(begin, min(begin + config.halfwarp, n))
            if active[i]
        ]
        if not group:
            continue
        stride = group[1] - group[0] if len(group) > 1 else 0
        affine = all(
            group[i + 1] - group[i] == stride for i in range(len(group) - 1)
        )
        if (
            affine
            and group[0] % access_bytes == 0
            and stride % access_bytes == 0
        ):
            count, total = affine_transactions(
                group[0], stride, len(group), access_bytes, config
            )
        else:
            issued = coalesce_halfwarp(group, access_bytes, config)
            count, total = len(issued), sum(t.size for t in issued)
        transactions += count
        nbytes += total
    return transactions, nbytes
