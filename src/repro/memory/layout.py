"""Data-layout transforms used by the case studies.

* **Padding** (tridiagonal solver, Section 5.2): insert one unused word
  after every ``num_banks`` elements so that power-of-two strides no
  longer map to a single bank (the paper's CR-NBC technique).
* **Interleaving** (SpMV, Section 5.3): reorder rows/entries so that the
  ``g`` rows a thread owns are split into ``g`` groups and rows of the
  same group are stored together (paper Figs. 9(d) and 10(b)).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError


def pad_index(index: int, every: int = 16) -> int:
    """Index into a padded array: one pad word per ``every`` elements."""
    if index < 0:
        raise ModelError("index must be non-negative")
    if every <= 0:
        raise ModelError("padding interval must be positive")
    return index + index // every


def padded_length(length: int, every: int = 16) -> int:
    """Storage length needed to hold ``length`` padded elements."""
    if length <= 0:
        return 0
    return pad_index(length - 1, every) + 1


def pad_array(values: np.ndarray, every: int = 16, fill: float = 0.0) -> np.ndarray:
    """Scatter a 1-D array into its padded layout."""
    values = np.asarray(values)
    out = np.full(padded_length(len(values), every), fill, dtype=values.dtype)
    out[[pad_index(i, every) for i in range(len(values))]] = values
    return out


def interleave_permutation(n: int, group: int) -> np.ndarray:
    """Map old index -> new index for group-interleaved storage.

    Element ``i`` moves to position ``(i % group) * (n // group) + i // group``:
    all first-of-group elements first, then all second-of-group, etc.
    """
    if group <= 0:
        raise ModelError("group must be positive")
    if n % group:
        raise ModelError(f"length {n} is not a multiple of group {group}")
    i = np.arange(n)
    return (i % group) * (n // group) + i // group


def interleave(values: np.ndarray, group: int) -> np.ndarray:
    """Reorder a 1-D array into interleaved storage."""
    values = np.asarray(values)
    perm = interleave_permutation(len(values), group)
    out = np.empty_like(values)
    out[perm] = values
    return out


def deinterleave(values: np.ndarray, group: int) -> np.ndarray:
    """Invert :func:`interleave`."""
    values = np.asarray(values)
    perm = interleave_permutation(len(values), group)
    return values[perm]
