"""Shared-memory bank-conflict analysis (paper Section 4.2).

Shared memory on the GTX 285 has 16 banks of 4-byte words; adjacent
words live in adjacent banks.  A half-warp's access is serialized into
as many transactions as the most-contended bank has *distinct* words
(threads reading the same word are served by the broadcast path).
Barra does not collect bank-conflict information; the paper wrote a
separate tool to derive the effective number of shared-memory
transactions -- this module is that tool.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from math import gcd

import numpy as np

from repro.arch.specs import HALF_WARP
from repro.errors import ModelError


@dataclass(frozen=True)
class BankConfig:
    """Bank layout of one SM's shared memory."""

    num_banks: int = 16
    bank_width: int = 4  # bytes
    halfwarp: int = HALF_WARP

    def __post_init__(self) -> None:
        if self.num_banks <= 0 or self.bank_width <= 0:
            raise ModelError("bank counts and widths must be positive")

    def bank_of(self, address: int) -> int:
        return (address // self.bank_width) % self.num_banks

    def word_of(self, address: int) -> int:
        return address // self.bank_width


DEFAULT_BANKS = BankConfig()


def conflict_degree(
    addresses: Sequence[int], config: BankConfig = DEFAULT_BANKS
) -> int:
    """Serialization factor for one half-warp's shared access.

    Returns the number of transactions needed: the maximum, over banks,
    of the number of distinct words requested in that bank.  Zero active
    addresses cost zero transactions; a broadcast (all threads reading
    one word) costs one.
    """
    if not addresses:
        return 0
    words_per_bank: dict[int, set[int]] = {}
    for address in addresses:
        word = config.word_of(int(address))
        words_per_bank.setdefault(word % config.num_banks, set()).add(word)
    return max(len(words) for words in words_per_bank.values())


def halfwarp_transactions(
    addresses: Sequence[int],
    active: Sequence[bool] | None = None,
    config: BankConfig = DEFAULT_BANKS,
) -> tuple[int, int]:
    """(actual, conflict-free) transaction counts for one half-warp."""
    if active is not None:
        addresses = [a for a, on in zip(addresses, active) if on]
    if not addresses:
        return 0, 0
    return conflict_degree(addresses, config), 1


def warp_transactions(
    addresses: "Sequence[int] | np.ndarray",
    active: "Sequence[bool] | np.ndarray | None" = None,
    config: BankConfig = DEFAULT_BANKS,
) -> "tuple[int, int] | tuple[np.ndarray, np.ndarray]":
    """(actual, conflict-free) transaction counts for a full warp.

    Each half-warp is serviced independently, as on GT200 hardware.
    A 2-D ``(num_warps, warp_size)`` address array batches the analysis
    over many warps at once; the result is then a pair of per-warp
    count *arrays*, row ``w`` equal to the scalar call on row ``w``.
    """
    if getattr(addresses, "ndim", 1) == 2:
        return warp_transactions_batch(addresses, active, config)
    n = len(addresses)
    if active is None:
        active = [True] * n
    actual = 0
    ideal = 0
    for start in range(0, n, config.halfwarp):
        group = [
            int(addresses[i])
            for i in range(start, min(start + config.halfwarp, n))
            if active[i]
        ]
        got, want = halfwarp_transactions(group, config=config)
        actual += got
        ideal += want
    return actual, ideal


def conflict_degree_batch(
    addresses: np.ndarray,
    active: np.ndarray | None = None,
    config: BankConfig = DEFAULT_BANKS,
) -> np.ndarray:
    """Per-row serialization factors for a ``(rows, threads)`` batch.

    Row ``r`` equals ``conflict_degree`` of row ``r``'s active
    addresses: the maximum, over banks, of the distinct words requested
    in that bank (zero when the row has no active thread).
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    rows, _ = addresses.shape
    if active is None:
        active = np.ones(addresses.shape, dtype=bool)
    else:
        active = np.asarray(active, dtype=bool)
    flat_active = active.ravel()
    if not flat_active.any():
        return np.zeros(rows, dtype=np.int64)
    row_of = np.repeat(np.arange(rows, dtype=np.int64), addresses.shape[1])
    row_ids = row_of[flat_active]
    words = (addresses.ravel() // config.bank_width)[flat_active]
    banks = words % config.num_banks
    # Distinct (row, bank, word) triples, then the per-(row, bank)
    # distinct-word counts, then the per-row maximum over banks.
    order = np.lexsort((words, banks, row_ids))
    r, b, w = row_ids[order], banks[order], words[order]
    first = np.ones(len(r), dtype=bool)
    first[1:] = (r[1:] != r[:-1]) | (b[1:] != b[:-1]) | (w[1:] != w[:-1])
    slot = r[first] * config.num_banks + b[first]
    counts = np.bincount(slot, minlength=rows * config.num_banks)
    return counts.reshape(rows, config.num_banks).max(axis=1)


def warp_transactions_batch(
    addresses: np.ndarray,
    active: np.ndarray | None = None,
    config: BankConfig = DEFAULT_BANKS,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-warp (actual, conflict-free) counts for a ``(W, 32)`` batch.

    Vectorized sibling of :func:`warp_transactions`: each warp row is
    split into independent half-warps and analysed in one pass over the
    whole batch, so the functional simulator's block-wide interpreter
    pays one NumPy dispatch instead of one Python call per warp.
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    num_warps, warp_size = addresses.shape
    if active is None:
        active = np.ones(addresses.shape, dtype=bool)
    else:
        active = np.asarray(active, dtype=bool)
    halves = -(-warp_size // config.halfwarp)
    # Pad the lane axis so every half-warp group is full-width, then
    # fold (warp, half) into the batch row axis.
    padded = halves * config.halfwarp
    if padded != warp_size:
        pad = ((0, 0), (0, padded - warp_size))
        addresses = np.pad(addresses, pad)
        active = np.pad(active, pad)
    grouped_addresses = addresses.reshape(num_warps * halves, config.halfwarp)
    grouped_active = active.reshape(num_warps * halves, config.halfwarp)
    actual = conflict_degree_batch(grouped_addresses, grouped_active, config)
    ideal = grouped_active.any(axis=1).astype(np.int64)
    return (
        actual.reshape(num_warps, halves).sum(axis=1),
        ideal.reshape(num_warps, halves).sum(axis=1),
    )


def stride_conflict_degree(
    stride_words: int, threads: int = HALF_WARP, config: BankConfig = DEFAULT_BANKS
) -> int:
    """Conflict degree of a regular strided pattern (analysis helper).

    Cyclic reduction's step ``k`` accesses shared memory with a stride of
    ``2**k`` words, giving ``min(2**k, num_banks)``-way conflicts
    (paper Fig. 5) as long as enough threads are active.
    """
    if threads <= 0:
        return 0
    addresses = [i * stride_words * config.bank_width for i in range(threads)]
    return conflict_degree(addresses, config)


# ----------------------------------------------------------------------
# closed-form counting for affine lane patterns (symbolic synthesis)
# ----------------------------------------------------------------------
def affine_conflict_degree(
    start: int, stride: int, count: int, config: BankConfig = DEFAULT_BANKS
) -> int:
    """Conflict degree of an affine half-warp access, closed form.

    The ``count`` active lanes request byte address ``start + stride*i``
    for ``i in [0, count)``, with ``stride`` a whole number of bank
    words so the requested *words* form an arithmetic progression with
    word stride ``k``.  ``k == 0`` is the broadcast path (one
    transaction).  Otherwise every lane's word is distinct and the lanes
    visit ``num_banks / gcd(k, num_banks)`` banks cyclically, so the
    most-contended bank serves ``ceil(count * gcd / num_banks)``
    distinct words -- which is the serialization factor
    :func:`conflict_degree` derives by materializing the pattern.
    """
    if count <= 0:
        return 0
    if stride % config.bank_width:
        raise ModelError(
            "affine_conflict_degree requires a whole-word stride"
        )
    word_stride = abs(stride) // config.bank_width
    if word_stride == 0:
        return 1
    period = config.num_banks // gcd(word_stride, config.num_banks)
    return -(-count // period)


def warp_transactions_affine(
    addresses: "Sequence[int] | np.ndarray",
    active: "Sequence[bool] | np.ndarray | None" = None,
    config: BankConfig = DEFAULT_BANKS,
) -> tuple[int, int]:
    """(actual, conflict-free) warp counts, closed form where lanes allow.

    Each half-warp whose active addresses form a whole-word arithmetic
    progression is scored through :func:`affine_conflict_degree`; any
    other half-warp falls back to the exact :func:`conflict_degree`
    scan, so the result always equals :func:`warp_transactions`.
    """
    n = len(addresses)
    if active is None:
        active = [True] * n
    actual = 0
    ideal = 0
    for begin in range(0, n, config.halfwarp):
        group = [
            int(addresses[i])
            for i in range(begin, min(begin + config.halfwarp, n))
            if active[i]
        ]
        if not group:
            continue
        ideal += 1
        stride = group[1] - group[0] if len(group) > 1 else 0
        affine = all(
            group[i + 1] - group[i] == stride for i in range(len(group) - 1)
        )
        if affine and stride % config.bank_width == 0:
            actual += affine_conflict_degree(group[0], stride, len(group), config)
        else:
            actual += conflict_degree(group, config)
    return actual, ideal
