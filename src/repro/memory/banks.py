"""Shared-memory bank-conflict analysis (paper Section 4.2).

Shared memory on the GTX 285 has 16 banks of 4-byte words; adjacent
words live in adjacent banks.  A half-warp's access is serialized into
as many transactions as the most-contended bank has *distinct* words
(threads reading the same word are served by the broadcast path).
Barra does not collect bank-conflict information; the paper wrote a
separate tool to derive the effective number of shared-memory
transactions -- this module is that tool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.arch.specs import HALF_WARP
from repro.errors import ModelError


@dataclass(frozen=True)
class BankConfig:
    """Bank layout of one SM's shared memory."""

    num_banks: int = 16
    bank_width: int = 4  # bytes
    halfwarp: int = HALF_WARP

    def __post_init__(self) -> None:
        if self.num_banks <= 0 or self.bank_width <= 0:
            raise ModelError("bank counts and widths must be positive")

    def bank_of(self, address: int) -> int:
        return (address // self.bank_width) % self.num_banks

    def word_of(self, address: int) -> int:
        return address // self.bank_width


DEFAULT_BANKS = BankConfig()


def conflict_degree(
    addresses: Sequence[int], config: BankConfig = DEFAULT_BANKS
) -> int:
    """Serialization factor for one half-warp's shared access.

    Returns the number of transactions needed: the maximum, over banks,
    of the number of distinct words requested in that bank.  Zero active
    addresses cost zero transactions; a broadcast (all threads reading
    one word) costs one.
    """
    if not addresses:
        return 0
    words_per_bank: dict[int, set[int]] = {}
    for address in addresses:
        word = config.word_of(int(address))
        words_per_bank.setdefault(word % config.num_banks, set()).add(word)
    return max(len(words) for words in words_per_bank.values())


def halfwarp_transactions(
    addresses: Sequence[int],
    active: Sequence[bool] | None = None,
    config: BankConfig = DEFAULT_BANKS,
) -> tuple[int, int]:
    """(actual, conflict-free) transaction counts for one half-warp."""
    if active is not None:
        addresses = [a for a, on in zip(addresses, active) if on]
    if not addresses:
        return 0, 0
    return conflict_degree(addresses, config), 1


def warp_transactions(
    addresses: Sequence[int],
    active: Sequence[bool] | None = None,
    config: BankConfig = DEFAULT_BANKS,
) -> tuple[int, int]:
    """(actual, conflict-free) transaction counts for a full warp.

    Each half-warp is serviced independently, as on GT200 hardware.
    """
    n = len(addresses)
    if active is None:
        active = [True] * n
    actual = 0
    ideal = 0
    for start in range(0, n, config.halfwarp):
        group = [
            int(addresses[i])
            for i in range(start, min(start + config.halfwarp, n))
            if active[i]
        ]
        got, want = halfwarp_transactions(group, config=config)
        actual += got
        ideal += want
    return actual, ideal


def stride_conflict_degree(
    stride_words: int, threads: int = HALF_WARP, config: BankConfig = DEFAULT_BANKS
) -> int:
    """Conflict degree of a regular strided pattern (analysis helper).

    Cyclic reduction's step ``k`` accesses shared memory with a stride of
    ``2**k`` words, giving ``min(2**k, num_banks)``-way conflicts
    (paper Fig. 5) as long as enough threads are active.
    """
    if threads <= 0:
        return 0
    addresses = [i * stride_words * config.bank_width for i in range(threads)]
    return conflict_degree(addresses, config)
