"""Memory-system analyzers: coalescing, bank conflicts, layouts."""

from repro.memory.banks import (
    DEFAULT_BANKS,
    BankConfig,
    conflict_degree,
    conflict_degree_batch,
    halfwarp_transactions,
    stride_conflict_degree,
    warp_transactions,
    warp_transactions_batch,
)
from repro.memory.coalescing import (
    DEFAULT_CONFIG,
    Transaction,
    TransactionConfig,
    bytes_transferred,
    coalesce_halfwarp,
    coalesce_warp,
    coalesce_warp_batch,
    coalesce_warp_multi,
    transaction_count,
)
from repro.memory.layout import (
    deinterleave,
    interleave,
    interleave_permutation,
    pad_array,
    pad_index,
    padded_length,
)

__all__ = [
    "BankConfig",
    "DEFAULT_BANKS",
    "DEFAULT_CONFIG",
    "Transaction",
    "TransactionConfig",
    "bytes_transferred",
    "coalesce_halfwarp",
    "coalesce_warp",
    "coalesce_warp_batch",
    "coalesce_warp_multi",
    "conflict_degree",
    "conflict_degree_batch",
    "deinterleave",
    "halfwarp_transactions",
    "interleave",
    "interleave_permutation",
    "pad_array",
    "pad_index",
    "padded_length",
    "stride_conflict_degree",
    "transaction_count",
    "warp_transactions",
    "warp_transactions_batch",
]
