"""Memory-system analyzers: coalescing, bank conflicts, layouts."""

from repro.memory.banks import (
    DEFAULT_BANKS,
    BankConfig,
    conflict_degree,
    halfwarp_transactions,
    stride_conflict_degree,
    warp_transactions,
)
from repro.memory.coalescing import (
    DEFAULT_CONFIG,
    Transaction,
    TransactionConfig,
    bytes_transferred,
    coalesce_halfwarp,
    coalesce_warp,
    transaction_count,
)
from repro.memory.layout import (
    deinterleave,
    interleave,
    interleave_permutation,
    pad_array,
    pad_index,
    padded_length,
)

__all__ = [
    "BankConfig",
    "DEFAULT_BANKS",
    "DEFAULT_CONFIG",
    "Transaction",
    "TransactionConfig",
    "bytes_transferred",
    "coalesce_halfwarp",
    "coalesce_warp",
    "conflict_degree",
    "deinterleave",
    "halfwarp_transactions",
    "interleave",
    "interleave_permutation",
    "pad_array",
    "pad_index",
    "padded_length",
    "stride_conflict_degree",
    "transaction_count",
    "warp_transactions",
]
