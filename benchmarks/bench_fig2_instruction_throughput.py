"""Fig. 2 (left): instruction throughput vs warps per SM, by type."""

from repro.arch import GTX285
from repro.sim.trace import TYPE_NAMES


def bench_fig2_left(benchmark, tables, reporter):
    table = benchmark.pedantic(
        lambda: tables.instruction, rounds=1, iterations=1
    )
    headers = ["warps"] + [f"type {t} GI/s" for t in TYPE_NAMES]
    rows = []
    for i, warps in enumerate(table.warp_counts):
        rows.append(
            [warps] + [f"{table.throughput[t][i]:.2f}" for t in TYPE_NAMES]
        )
    reporter.line("Instruction throughput vs warps/SM (paper Fig. 2, left)")
    reporter.table(headers, rows)
    reporter.line()
    for t in TYPE_NAMES:
        sat = table.saturation_warps(t, 0.95)
        reporter.line(
            f"type {t}: saturates at ~{sat} warps, "
            f"peak {table.saturated(t):.2f} / theoretical "
            f"{GTX285.peak_instruction_throughput(t) / 1e9:.2f} GI/s"
        )

    # Shape assertions from the paper's discussion:
    # type II saturates around 6 warps ("pipeline stages is around 6")
    assert table.saturation_warps("II", 0.9) <= 8
    # more functional units -> more warps needed to saturate
    assert table.saturation_warps("I", 0.9) >= table.saturation_warps(
        "IV", 0.9
    )
    # saturated MAD throughput lands near the paper's measured 9.33 GI/s
    assert 8.3 <= table.saturated("II") <= 11.1
    # every curve is (weakly) increasing up to its knee
    for t in TYPE_NAMES:
        series = table.throughput[t]
        knee = series.index(max(series))
        assert all(
            b >= a * 0.97 for a, b in zip(series[:knee], series[1 : knee + 1])
        )
