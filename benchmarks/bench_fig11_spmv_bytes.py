"""Fig. 11: SpMV bytes per entry (a) and time breakdown (b)."""

import pytest

from repro.apps.matrices import qcd_like
from repro.apps.spmv import FORMATS, bytes_per_entry, run_spmv
from repro.model import predict_with_granularity

#: Paper Fig. 11(a) vector-entry bytes at 32/16/4 B for reference.
PAPER_VECTOR = {
    "ell": (6.69, 5.01, 2.33),
    "bell_im": (4.55, 3.63, 2.01),
    "bell_imiv": (4.00, 1.33, 1.33),
}
LABELS = {"ell": "ELL", "bell_im": "BELL+IM", "bell_imiv": "BELL+IMIV"}


@pytest.fixture(scope="module")
def qcd():
    return qcd_like()


@pytest.fixture(scope="module")
def runs(model, gpu, qcd, trace_cache, spmv_sample_blocks, engine_workers):
    # Exact full-grid traces by default (dedup + the pool made them
    # cheap); pass --sample for the legacy 12-block representative mode.
    return {
        fmt: run_spmv(
            qcd, fmt, model=model, gpu=gpu,
            sample_blocks=spmv_sample_blocks, workers=engine_workers,
            trace_cache=trace_cache,
        )
        for fmt in FORMATS
    }


def bench_fig11a_bytes(benchmark, runs, qcd, reporter):
    def generate():
        rows = []
        for fmt in FORMATS:
            bpe = bytes_per_entry(runs[fmt], qcd)
            for gran in (32, 16, 4):
                rows.append(
                    [
                        LABELS[fmt],
                        gran,
                        f"{bpe['vals'].get(gran, 0):.2f}",
                        f"{bpe['cols'].get(gran, 0):.2f}",
                        f"{bpe['x'].get(gran, 0):.2f}",
                        f"{PAPER_VECTOR[fmt][(32, 16, 4).index(gran)]:.2f}",
                    ]
                )
        return rows

    rows = benchmark.pedantic(generate, rounds=1, iterations=1)
    reporter.line(
        "Fig. 11(a): average bytes per matrix entry on synthetic QCD "
        "(49152^2, nnz 1,916,928)"
    )
    reporter.table(
        ["format", "granularity", "matrix", "col idx", "vector", "paper vec"],
        rows,
    )

    data = {fmt: bytes_per_entry(runs[fmt], qcd) for fmt in FORMATS}
    # Matrix entries are always fully coalesced: 4.00 bytes.
    for fmt in FORMATS:
        assert data[fmt]["vals"][32] == pytest.approx(4.0, rel=0.02)
    # Column indices: 4.00 for ELL, 0.44 (1/9th) for BELL.
    assert data["ell"]["cols"][32] == pytest.approx(4.0, rel=0.02)
    assert data["bell_im"]["cols"][32] == pytest.approx(0.444, rel=0.05)
    # Vector bytes: IMIV < IM <= ELL at hardware granularity.
    assert (
        data["bell_imiv"]["x"][32]
        < data["bell_im"]["x"][32]
        <= data["ell"]["x"][32] * 1.05
    )
    # Finer granularity monotonically reduces vector bytes.
    for fmt in FORMATS:
        x = data[fmt]["x"]
        assert x[4] <= x[16] + 1e-9 <= x[32] + 1e-9


def bench_fig11b_breakdown(benchmark, runs, model, reporter):
    def generate():
        rows = []
        for fmt in FORMATS:
            run = runs[fmt]
            inputs = model.extract(run.trace, run.launch, run.resources)
            g16 = predict_with_granularity(model, inputs, 16)
            g4 = predict_with_granularity(model, inputs, 4)
            r = run.report
            rows.append(
                [
                    LABELS[fmt],
                    f"{r.component_totals.global_ * 1e3:.3f}",
                    f"{g16.modified.component_totals.global_ * 1e3:.3f}",
                    f"{g4.modified.component_totals.global_ * 1e3:.3f}",
                    f"{r.component_totals.instruction * 1e3:.3f}",
                    f"{r.component_totals.shared * 1e3:.3f}",
                    f"{run.measured.milliseconds:.3f}",
                    f"{run.model_error:.0%}",
                ]
            )
        return rows

    rows = benchmark.pedantic(generate, rounds=1, iterations=1)
    reporter.line(
        "Fig. 11(b): model breakdown (ms) at 32/16/4-byte granularity "
        "vs hardware measurement"
    )
    reporter.table(
        [
            "format",
            "global32",
            "global16",
            "global4",
            "instr",
            "shared",
            "measured",
            "err",
        ],
        rows,
    )

    for fmt in FORMATS:
        run = runs[fmt]
        # All three formats are global-memory bound (paper Fig. 11b).
        assert run.report.bottleneck == "global"
        # Paper: "the error between the measured and the simulated
        # performance of bottleneck factor is within 5%"; allow 15%.
        assert run.model_error < 0.15
