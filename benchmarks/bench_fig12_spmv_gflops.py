"""Fig. 12: SpMV GFLOPS across formats, with and without texture cache."""

import pytest

from repro.apps.matrices import qcd_like
from repro.apps.spmv import FORMATS, gflops, run_spmv

#: Paper Fig. 12 (GFLOPS, single precision).
PAPER = {
    ("ell", False): 15.9,
    ("bell_im", False): 23.4,
    ("ell", True): 23.4,
    ("bell_im", True): 32.0,
    ("bell_imiv", False): 33.7,
    ("bell_imiv", True): 37.7,
}
LABELS = {"ell": "ELL", "bell_im": "BELL+IM", "bell_imiv": "BELL+IMIV"}


@pytest.fixture(scope="module")
def qcd():
    return qcd_like()


@pytest.fixture(scope="module")
def runs(gpu, qcd, trace_cache, spmv_sample_blocks, engine_workers):
    # Exact full-grid traces by default; --sample restores the legacy
    # 12-block representative mode.
    out = {}
    for fmt in FORMATS:
        for cache in (False, True):
            out[(fmt, cache)] = run_spmv(
                qcd, fmt, gpu=gpu, use_cache=cache,
                sample_blocks=spmv_sample_blocks, workers=engine_workers,
                trace_cache=trace_cache,
            )
    return out


def bench_fig12(benchmark, runs, qcd, reporter):
    def generate():
        rows = []
        for fmt in FORMATS:
            for cache in (False, True):
                run = runs[(fmt, cache)]
                name = LABELS[fmt] + ("+Cache" if cache else "")
                rows.append(
                    [
                        name,
                        f"{gflops(qcd, run.measured.seconds):.1f}",
                        f"{run.measured.milliseconds:.3f}",
                        f"{run.measured.cache_hit_rate:.0%}" if cache else "-",
                        f"{PAPER[(fmt, cache)]:.1f}",
                    ]
                )
        return rows

    rows = benchmark.pedantic(generate, rounds=1, iterations=1)
    reporter.line("Fig. 12: SpMV performance on synthetic QCD (GFLOPS)")
    reporter.table(
        ["configuration", "GFLOPS", "ms", "cache hits", "paper GFLOPS"], rows
    )

    rates = {
        key: gflops(qcd, run.measured.seconds) for key, run in runs.items()
    }
    # Blocked storage beats scalar ELL.
    assert rates[("bell_im", False)] > 1.2 * rates[("ell", False)]
    # Vector interleaving beats BELL+IM even without the cache.
    assert rates[("bell_imiv", False)] > rates[("bell_im", False)]
    # The cache helps (or at worst doesn't hurt) every format.
    for fmt in FORMATS:
        assert rates[(fmt, True)] >= rates[(fmt, False)] * 0.98
    # The paper's headline: IMIV "outperforms the previous method
    # [BELL+IM+Cache] even without using the texture cache".
    assert rates[("bell_imiv", False)] > rates[("bell_im", True)]
    # Best overall configuration is an IMIV variant.
    best = max(rates, key=rates.get)
    assert best[0] == "bell_imiv"
    improvement = rates[("bell_imiv", True)] / rates[("bell_im", True)]
    reporter.line()
    reporter.line(
        f"BELL+IMIV+Cache over BELL+IM+Cache: +{improvement - 1:.0%} "
        "(paper: +18%; muted here because the synthetic lattice's "
        "locality leaves IMIV little vector waste for a cache to absorb)"
    )
    assert improvement > 1.0
