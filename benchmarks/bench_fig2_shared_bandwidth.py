"""Fig. 2 (right): shared-memory bandwidth vs warps per SM."""

from repro.arch import GTX285


def bench_fig2_right(benchmark, tables, reporter):
    table = benchmark.pedantic(lambda: tables.shared, rounds=1, iterations=1)
    peak = GTX285.peak_shared_bandwidth
    rows = [
        [warps, f"{bw / 1e9:.0f}", f"{bw / peak:.0%}"]
        for warps, bw in zip(table.warp_counts, table.bandwidth)
    ]
    reporter.line("Shared-memory bandwidth vs warps/SM (paper Fig. 2, right)")
    reporter.line(f"theoretical peak: {peak / 1e9:.0f} GB/s (paper: 1420)")
    reporter.table(["warps", "GB/s", "of peak"], rows)
    reporter.line()
    reporter.line(
        f"saturates at ~{table.saturation_warps(0.95)} warps at "
        f"{table.saturated / 1e9:.0f} GB/s "
        f"({table.saturated / peak:.0%} of peak; paper: 1165 = 82%)"
    )

    # Paper shapes: saturated fraction near 82%, and the shared pipeline
    # needs at least as many warps as the instruction pipeline.
    assert 0.75 <= table.saturated / peak <= 0.92
    from repro.micro import measure_instruction_throughput  # session tables

    assert table.saturation_warps(0.9) >= 6
    # The paper's Fig. 7a values read off this curve decline with fewer
    # warps: check the {8, 4, 2, 1}-warp ordering used by CR's steps.
    ladder = [table.at(w) for w in (8, 4, 2, 1)]
    assert ladder[0] > ladder[1] > ladder[2] > ladder[3]
