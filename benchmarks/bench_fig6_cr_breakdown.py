"""Fig. 6: per-step component breakdown for CR and CR-NBC.

512 systems of 512 equations; forward-reduction stages shown per step
with their warp parallelism, exactly like the paper's stacked bars.
"""

import pytest

from repro.apps.tridiag import forward_stage_count, run_cr
from repro.model import predict_without_bank_conflicts


@pytest.fixture(scope="module")
def runs(model, gpu, trace_cache):
    return {
        padded: run_cr(
            512, 512, padded=padded, model=model, gpu=gpu,
            trace_cache=trace_cache,
        )
        for padded in (False, True)
    }


def _step_rows(run):
    rows = []
    for stage in run.report.stages[: forward_stage_count(512)]:
        rows.append(
            [
                f"step {stage.index}",
                stage.active_warps,
                f"{stage.times.global_ * 1e3:.4f}",
                f"{stage.times.shared * 1e3:.4f}",
                f"{stage.times.instruction * 1e3:.4f}",
                stage.bottleneck,
            ]
        )
    return rows


def bench_fig6a_cr(benchmark, runs, reporter):
    rows = benchmark.pedantic(
        lambda: _step_rows(runs[False]), rounds=1, iterations=1
    )
    reporter.line(
        "Fig. 6(a): CR forward-reduction breakdown (ms per step, 512x512)"
    )
    reporter.table(
        ["stage", "warps", "global", "shared", "instr", "bottleneck"], rows
    )

    report = runs[False].report
    stages = report.stages[: forward_stage_count(512)]
    # Step 0 (the load) is global-bound.
    assert stages[0].bottleneck == "global"
    # Step 1 is instruction-bound (2-way conflicts not yet dominant).
    assert stages[1].bottleneck == "instruction"
    # Steps 2+ become shared-bound as conflicts double.
    assert all(s.bottleneck == "shared" for s in stages[2:6])
    # Warp parallelism decays 8, 8, 4, 2, 1, 1... (paper's labels).
    assert [s.active_warps for s in stages[:5]] == [8, 8, 4, 2, 1]


def bench_fig6b_cr_nbc(benchmark, runs, reporter):
    rows = benchmark.pedantic(
        lambda: _step_rows(runs[True]), rounds=1, iterations=1
    )
    reporter.line("Fig. 6(b): CR-NBC forward-reduction breakdown (ms per step)")
    reporter.table(
        ["stage", "warps", "global", "shared", "instr", "bottleneck"], rows
    )

    stages = runs[True].report.stages[: forward_stage_count(512)]
    # With conflicts removed, every solve step is instruction-bound.
    assert all(s.bottleneck == "instruction" for s in stages[1:])


def bench_fig6_whatif_preview(benchmark, runs, model, reporter):
    """The Fig. 6(b) prediction made *from the CR trace alone*."""
    run = runs[False]

    def generate():
        inputs = model.extract(run.trace, run.launch, run.resources)
        return predict_without_bank_conflicts(model, inputs)

    result = benchmark.pedantic(generate, rounds=1, iterations=1)
    reporter.line("What-if from CR's trace: remove bank conflicts")
    reporter.line(result.render())
    # The model predicts a substantial win before CR-NBC is written.
    assert result.speedup > 1.3
