"""Section 5's architectural what-ifs: the paper's hardware suggestions.

These are the ablations the model motivates: raising the resident-block
ceiling, scaling SM resources, prime-numbered banks / padding, early
resource release, and finer memory-transaction granularity.
"""

import pytest

from repro.apps.matmul import run_matmul
from repro.apps.matrices import qcd_like
from repro.apps.spmv import run_spmv
from repro.apps.tridiag import run_cr
from repro.model import (
    predict_with_early_resource_release,
    predict_with_granularity,
    predict_with_max_blocks,
    predict_with_resources,
    predict_without_bank_conflicts,
)


def bench_whatif_max_blocks_16(benchmark, model, gpu, reporter, trace_cache):
    """Paper 5.1: "if the maximum number of blocks was increased to 16
    ... more resident parallel warps".  The 8x8 tile is block-limit
    bound (16x16 is register-bound at 8 blocks either way)."""
    run = run_matmul(
        1024, 8, model=model, gpu=gpu, measure=False,
        trace_cache=trace_cache,
    )

    def generate():
        inputs = model.extract(run.trace, run.launch, run.resources)
        return predict_with_max_blocks(model, inputs, run.resources, 16)

    result = benchmark.pedantic(generate, rounds=1, iterations=1)
    reporter.line(result.render())
    reporter.line(
        f"warps/SM: {result.baseline.diagnostics.warps_per_sm} -> "
        f"{result.modified.diagnostics.warps_per_sm}"
    )
    # More resident warps; throughput curves are near-flat past 16
    # warps, so the time gain is small but never negative.
    assert (
        result.modified.diagnostics.warps_per_sm
        > result.baseline.diagnostics.warps_per_sm
    )
    assert result.speedup >= 1.0


def bench_whatif_bigger_register_file(benchmark, model, gpu, reporter, trace_cache):
    """Paper 5.1: more registers/shared memory fix the 32x32 tile."""
    run = run_matmul(
        1024, 32, model=model, gpu=gpu, measure=False,
        trace_cache=trace_cache,
    )

    def generate():
        inputs = model.extract(run.trace, run.launch, run.resources)
        return predict_with_resources(
            model, inputs, run.resources, register_scale=2.0, shared_scale=2.0
        )

    result = benchmark.pedantic(generate, rounds=1, iterations=1)
    reporter.line(result.render())
    # Doubling resources lifts the 3-block ceiling: higher occupancy
    # restores shared throughput and the 32x32 tile speeds up.
    assert result.speedup > 1.1
    assert result.baseline.bottleneck == "shared"


def bench_whatif_prime_banks(benchmark, model, gpu, reporter, trace_cache):
    """Paper 5.2: "change the number of shared memory banks ... to a
    prime number to avoid bank conflicts" -- equivalently, conflict-free
    shared traffic for CR."""
    run = run_cr(
        512, 512, model=model, gpu=gpu, measure=False,
        trace_cache=trace_cache,
    )

    def generate():
        inputs = model.extract(run.trace, run.launch, run.resources)
        return predict_without_bank_conflicts(model, inputs)

    result = benchmark.pedantic(generate, rounds=1, iterations=1)
    reporter.line(result.render())
    assert result.speedup > 1.3


def bench_whatif_early_release(benchmark, model, gpu, reporter, trace_cache):
    """Paper 5.2: "release unused hardware resources early" so more
    blocks raise warp parallelism in CR's narrow late steps."""
    run = run_cr(
        512, 512, model=model, gpu=gpu, measure=False,
        trace_cache=trace_cache,
    )

    def generate():
        inputs = model.extract(run.trace, run.launch, run.resources)
        return predict_with_early_resource_release(model, inputs, 1)

    result = benchmark.pedantic(generate, rounds=1, iterations=1)
    reporter.line(result.render())
    assert result.speedup > 1.0


def bench_whatif_granularity_16(benchmark, model, gpu, reporter, trace_cache):
    """Paper 5.3: a 16-byte transaction granularity would raise SpMV
    performance (Fig. 11's "Global 16" bars)."""
    qcd = qcd_like()
    run = run_spmv(
        qcd, "ell", model=model, gpu=gpu, measure=False, sample_blocks=12,
        trace_cache=trace_cache,
    )

    def generate():
        inputs = model.extract(run.trace, run.launch, run.resources)
        return predict_with_granularity(model, inputs, 16)

    result = benchmark.pedantic(generate, rounds=1, iterations=1)
    reporter.line(result.render())
    assert result.modified.component_totals.global_ <= (
        result.baseline.component_totals.global_
    )
