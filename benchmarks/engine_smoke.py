"""Small-grid engine smoke benchmark (CI regression gate).

Runs one matmul grid through the serial simulator and through the
deduplicating engine, then checks three things:

1. the engine's aggregate statistics are bit-identical to the serial
   full-grid run (correctness);
2. the engine is at least ``MIN_SPEEDUP``x faster (the whole point);
3. the engine's absolute wall-clock has not regressed more than 2x
   against the recorded baseline in ``engine_smoke_baseline.json``.

Usage::

    PYTHONPATH=src python benchmarks/engine_smoke.py --check
    PYTHONPATH=src python benchmarks/engine_smoke.py --update   # rebaseline
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.apps.matmul import build_matmul_kernel, prepare_problem
from repro.sim.engine import SimulationEngine
from repro.sim.functional import FunctionalSimulator

BASELINE_PATH = Path(__file__).parent / "engine_smoke_baseline.json"

#: Smoke configuration: 64 blocks, each with real shared-memory traffic.
N, TILE = 256, 16

#: Acceptance floor for dedup vs serial full-grid simulation.
MIN_SPEEDUP = 5.0

#: Wall-clock regression gate vs the recorded baseline.
MAX_REGRESSION = 2.0


def run_once() -> dict:
    kernel = build_matmul_kernel(N, TILE)
    launch = prepare_problem(N, TILE).launch()

    serial_start = time.perf_counter()
    serial = FunctionalSimulator(
        kernel, gmem=prepare_problem(N, TILE).gmem
    ).run(launch)
    serial_seconds = time.perf_counter() - serial_start

    engine_start = time.perf_counter()
    engine = SimulationEngine(kernel, gmem=prepare_problem(N, TILE).gmem)
    fast = engine.run(launch)
    engine_seconds = time.perf_counter() - engine_start

    identical = [s.canonical() for s in serial.stages] == [
        s.canonical() for s in fast.stages
    ]
    return {
        "n": N,
        "tile": TILE,
        "blocks": launch.num_blocks,
        "serial_seconds": serial_seconds,
        "engine_seconds": engine_seconds,
        "speedup": serial_seconds / engine_seconds,
        "identical": identical,
        "engine": fast.engine_stats.summary(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--check", action="store_true")
    mode.add_argument("--update", action="store_true")
    args = parser.parse_args(argv)

    result = run_once()
    print(
        f"matmul {result['n']} tile {result['tile']} "
        f"({result['blocks']} blocks): "
        f"serial {result['serial_seconds']:.2f} s, "
        f"engine {result['engine_seconds']:.2f} s "
        f"({result['speedup']:.1f}x)"
    )
    print(f"engine: {result['engine']}")

    if not result["identical"]:
        print("FAIL: engine aggregates differ from serial full-grid run")
        return 1
    if result["speedup"] < MIN_SPEEDUP:
        print(f"FAIL: speedup {result['speedup']:.1f}x < {MIN_SPEEDUP}x")
        return 1

    if args.update:
        # Record the measurement with generous headroom so the absolute
        # gate keyed to this baseline tolerates slower (shared CI)
        # machines; the relative MIN_SPEEDUP gate above is what catches
        # genuine engine slowdowns.
        padded = round(max(result["engine_seconds"] * 1.5, 1.0), 2)
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    "n": result["n"],
                    "tile": result["tile"],
                    "engine_seconds": padded,
                    "note": (
                        f"measured {result['engine_seconds']:.2f} s; "
                        "recorded generously to absorb machine variance"
                    ),
                },
                indent=2,
            )
        )
        print(f"baseline updated: {BASELINE_PATH}")
        return 0

    baseline = json.loads(BASELINE_PATH.read_text())
    limit = baseline["engine_seconds"] * MAX_REGRESSION
    if result["engine_seconds"] > limit:
        print(
            f"FAIL: engine wall-clock {result['engine_seconds']:.2f} s "
            f"exceeds {MAX_REGRESSION}x recorded baseline "
            f"({baseline['engine_seconds']:.2f} s)"
        )
        return 1
    print("engine smoke benchmark OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
