"""Small-grid engine smoke benchmark (CI regression gate).

Runs one matmul grid through the serial simulator and through the
deduplicating engine, then checks three things:

1. the engine's aggregate statistics are bit-identical to the serial
   full-grid run (correctness);
2. the engine is at least ``MIN_SPEEDUP``x faster (the whole point);
3. the engine's absolute wall-clock has not regressed more than 2x
   against the recorded baseline in ``engine_smoke_baseline.json``.

A second gate covers the *timing* layer: a Fig. 4-scale heterogeneous
grid (1021 tail-guarded blocks, three block classes) is measured through
the naive per-cluster replay, the signature-deduplicating serial path,
and the parallel path.  All three must agree bit-identically on cycles,
and dedup + pool must be at least ``TIMING_MIN_SPEEDUP``x faster than
the naive replay.

A third gate covers the *functional interpreter*: the SpMV full grid
(data-dependent, so the engine cannot deduplicate -- the pipeline's
worst case) is traced through the per-warp reference oracle and through
the batched interpreter (grid batching included).  Per-block traces
must be bit-identical, the end-to-end hardware-model prediction must be
bit-identical, and the batched path must be at least
``FUNCTIONAL_MIN_SPEEDUP``x faster; both paths report their
instructions/second.

A fourth gate covers *barrier-synchronized grid batching* (per-block
barrier release): matmul and cyclic-reduction full grids -- the
paper's headline barrier-heavy workloads -- are traced through the
oracle and through the grid-batched interpreter.  Per-block traces and
end-to-end predictions must be bit-identical, and each workload must
batch at least ``BARRIER_MIN_SPEEDUP``x faster than the oracle.

A fifth gate covers *symbolic trace synthesis*: the whole kernel zoo
runs through the engine in ``trace_mode="both"`` (which raises unless
every synthesized trace is pickle-byte-identical to its interpreted
twin), every affine kernel must synthesize all of its classes and SpMV
must fall back cleanly; then a large cyclic-reduction grid (one system
per block, so per-block work is grid-independent) is traced through
the batched interpreter and through the symbolic engine, demanding
identical aggregates, at least ``SYMBOLIC_MIN_SPEEDUP``x, and a
symbolic wall-clock that stays flat as the grid grows 16x.

A sixth gate covers the *fault-tolerant execution substrate*: the
SpMV small grid runs healthy and serial once, then again through the
process pool with deterministic faults injected (a worker crash, a hung
task reaped by the watchdog, a corrupted trace-cache entry, a timing-
layer worker crash).  Every degraded run must complete, stay pickle-
byte-identical to the healthy serial reference, and report the injected
failures in its health counters.  ``--chaos`` runs only this gate
(used by CI's chaos step, typically with ``$REPRO_FAULTS`` set so the
pool layer also proves it honors environment-installed plans).

A seventh gate covers *observability*: the smoke workload runs with
span/metric recording off and on; traces (engine_stats normalized) and
MeasuredRuns must be pickle-byte-identical either way, and the
recording overhead is reported.  ``--obs DIR`` exports the recorded
session -- CI uploads it as the ``obs-trace`` artifact and renders
``repro obs report --markdown`` into the job summary.

``--check`` additionally writes every gate's measurements (instr/sec,
speedups, cycle counts) to a machine-readable JSON file (default
``BENCH_engine_smoke.json``, ``--json PATH`` to relocate) that CI
uploads as a per-commit perf-trajectory artifact.

Usage::

    PYTHONPATH=src python benchmarks/engine_smoke.py --check
    PYTHONPATH=src python benchmarks/engine_smoke.py --update   # rebaseline
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import sys
import time
from pathlib import Path

from repro.apps import spmv
from repro.apps.matmul import build_matmul_kernel, prepare_problem
from repro.apps.matrices import random_blocked
from repro.hw import HardwareGpu
from repro.isa import Imm, KernelBuilder
from repro.sim import GlobalMemory, LaunchConfig
from repro.sim.engine import SimulationEngine
from repro.sim.functional import FunctionalSimulator

BASELINE_PATH = Path(__file__).parent / "engine_smoke_baseline.json"

#: Smoke configuration: 64 blocks, each with real shared-memory traffic.
N, TILE = 256, 16

#: Acceptance floor for dedup vs serial full-grid simulation.  The
#: serial baseline now grid-batches barriered kernels too (per-block
#: barrier release), so it is itself several times faster than when
#: this gate was 5x; the dedup engine's remaining edge is simulating 4
#: of 64 blocks instead of all of them (measured ~3-4.5x; gated with
#: headroom for noisy shared runners).
MIN_SPEEDUP = 2.5

#: Wall-clock regression gate vs the recorded baseline.
MAX_REGRESSION = 2.0

#: Timing-layer grid: Fig. 4 scale (1024-block ballpark), sized so the
#: first and last blocks land in one cluster and the other nine clusters
#: share a single queue signature (strong dedup even on one core).
TIMING_BLOCKS = 1021
TIMING_THREADS = 64
TIMING_INNER = 48

#: Acceptance floor for dedup+pool vs naive per-cluster timing replay.
TIMING_MIN_SPEEDUP = 4.0

#: Functional-gate workload: a data-dependent SpMV grid (96 blocks of
#: 2 warps with the pipeline's launch: granularities (32, 16, 4) and
#: recorded segments), traced in full.
FUNCTIONAL_BLOCK_ROWS = 2048
FUNCTIONAL_SLOTS = 6

#: Acceptance floor for the batched interpreter vs the per-warp oracle
#: on the SpMV full-grid trace.
FUNCTIONAL_MIN_SPEEDUP = 3.0

#: Barrier-gate workloads: full matmul and cyclic-reduction grids.
BARRIER_MATMUL_N, BARRIER_MATMUL_TILE = 192, 16
BARRIER_CR_N, BARRIER_CR_SYSTEMS = 128, 40

#: Acceptance floor for grid-batched barriered kernels vs the oracle
#: (per workload; observed ~6-18x, gated conservatively).
BARRIER_MIN_SPEEDUP = 2.0

#: Symbolic-gate workload: cyclic reduction with one system per block,
#: so per-block work (and hence the one-class synthesis cost) is
#: independent of the grid size.
SYMBOLIC_CR_N = 128
SYMBOLIC_SYSTEMS_SMALL = 64
SYMBOLIC_SYSTEMS_LARGE = 1024

#: Acceptance floor for the symbolic engine vs the batched interpreter
#: on the large grid (observed ~20x; per-block synthesis cost is
#: grid-independent so the ratio grows with the grid).
SYMBOLIC_MIN_SPEEDUP = 10.0

#: The symbolic wall-clock must stay flat as the grid grows 16x --
#: synthesis is per class, not per block (3x absorbs timer noise on
#: sub-second runs).
SYMBOLIC_MAX_GRID_RATIO = 3.0

#: Chaos-gate workload: a small data-dependent SpMV lattice (no dedup,
#: so the grid genuinely fans out across the pool) with per-task
#: chunking forced fine enough to give every injected fault a target.
CHAOS_DIMS = (4, 4, 4, 4)

#: Watchdog budget for the chaos gate's hung task (generous against
#: slow shared runners; the injected hang sleeps far longer).
CHAOS_TASK_TIMEOUT = 5.0


def run_once() -> dict:
    kernel = build_matmul_kernel(N, TILE)
    launch = prepare_problem(N, TILE).launch()

    serial_start = time.perf_counter()
    serial = FunctionalSimulator(
        kernel, gmem=prepare_problem(N, TILE).gmem
    ).run(launch)
    serial_seconds = time.perf_counter() - serial_start

    engine_start = time.perf_counter()
    # This gate measures the dedup engine's interpreted probe path;
    # the symbolic path has its own gate (run_symbolic) sized for a
    # workload where per-block cost is grid-independent.
    engine = SimulationEngine(
        kernel, gmem=prepare_problem(N, TILE).gmem, trace_mode="interpret"
    )
    fast = engine.run(launch)
    engine_seconds = time.perf_counter() - engine_start

    identical = [s.canonical() for s in serial.stages] == [
        s.canonical() for s in fast.stages
    ]
    return {
        "n": N,
        "tile": TILE,
        "blocks": launch.num_blocks,
        "serial_seconds": serial_seconds,
        "engine_seconds": engine_seconds,
        "speedup": serial_seconds / engine_seconds,
        "identical": identical,
        "engine": fast.engine_stats.summary(),
    }


def build_timing_workload():
    """A Fig. 4-scale heterogeneous grid: tail-guarded streaming kernel."""
    n = TIMING_BLOCKS * TIMING_THREADS - 37  # last block partially active
    gmem = GlobalMemory()
    buf = gmem.alloc(n + TIMING_THREADS, "buf")
    b = KernelBuilder("smoke_stream", params=("buf", "n"))
    gid = b.reg()
    b.imad(gid, b.ctaid_x, b.ntid, b.tid)
    guard = b.pred()
    b.isetp(guard, "lt", gid, b.param("n"))
    with b.if_then(guard):
        addr = b.reg()
        b.imad(addr, gid, Imm(4), b.param("buf"))
        acc = b.reg()
        b.mov(acc, Imm(0.0))
        v = b.reg()
        with b.counted_loop(TIMING_INNER):
            b.ldg(v, addr)
            b.fmad(acc, v, v, acc)
            b.fmad(acc, v, acc, acc)
        b.stg(addr, acc)
    b.exit()
    launch = LaunchConfig(
        grid=(TIMING_BLOCKS, 1),
        block_threads=TIMING_THREADS,
        params={"buf": buf, "n": n},
    )
    return b.build(), gmem, launch


def run_timing() -> dict:
    """Time the heterogeneous grid through naive / dedup / parallel."""
    kernel, gmem, launch = build_timing_workload()
    trace = SimulationEngine(kernel, gmem=gmem).run(launch)
    table = trace.block_traces
    resident = 8

    naive_start = time.perf_counter()
    naive = HardwareGpu().measure(
        table,
        launch.num_blocks,
        resident,
        wave_extrapolation=False,
        dedup=False,
    )
    naive_seconds = time.perf_counter() - naive_start

    serial = HardwareGpu().measure(table, launch.num_blocks, resident)

    fast_gpu = HardwareGpu(workers=min(4, os.cpu_count() or 1))
    fast_start = time.perf_counter()
    fast = fast_gpu.measure(table, launch.num_blocks, resident)
    fast_seconds = time.perf_counter() - fast_start

    # The nine interior clusters share exactly equal queues here, so the
    # deduplicated paths must match the naive replay bit for bit (and
    # the parallel path must match serial dedup on every field).
    identical = (
        fast == serial
        and fast.cycles == naive.cycles
        and fast.cluster_cycles == naive.cluster_cycles
    )
    return {
        "blocks": launch.num_blocks,
        "naive_seconds": naive_seconds,
        "fast_seconds": fast_seconds,
        "speedup": naive_seconds / fast_seconds,
        "identical": identical,
        "cycles": fast.cycles,
        "cluster_sims": fast.cluster_sims,
        "signature_hits": fast.signature_hits,
    }


def differential_gate(kernel, fresh_problem, resident: int = 4) -> dict:
    """Trace a full grid through the per-warp oracle and the batched
    interpreter (each on a fresh problem's gmem), demanding
    pickled-byte-identical per-block traces AND end-to-end timing-layer
    measurements; returns the gate's measurements (times, instr/sec,
    speedup, cycles)."""
    problem = fresh_problem()
    launch = problem.launch()
    blocks = launch.all_blocks()

    oracle = FunctionalSimulator(kernel, gmem=problem.gmem, batched=False)
    oracle_start = time.perf_counter()
    reference = oracle.run_blocks(launch, blocks)
    oracle_seconds = time.perf_counter() - oracle_start

    batched_sim = FunctionalSimulator(
        kernel, gmem=fresh_problem().gmem, batched=True
    )
    batched_start = time.perf_counter()
    batched = batched_sim.run_blocks(launch, blocks)
    batched_seconds = time.perf_counter() - batched_start

    identical = all(
        a == b and pickle.dumps(a) == pickle.dumps(b)
        for a, b in zip(reference, batched)
    )

    # End-to-end prediction bit-identity: the timing layer must see the
    # same measurement from either trace table.
    ref_run = HardwareGpu().measure(reference, launch.num_blocks, resident)
    bat_run = HardwareGpu().measure(batched, launch.num_blocks, resident)
    identical = identical and ref_run == bat_run

    instructions = sum(
        stage.total_instructions for t in reference for stage in t.stages
    )
    return {
        "blocks": len(blocks),
        "instructions": instructions,
        "oracle_seconds": oracle_seconds,
        "batched_seconds": batched_seconds,
        "oracle_ips": instructions / oracle_seconds,
        "batched_ips": instructions / batched_seconds,
        "speedup": oracle_seconds / batched_seconds,
        "cycles": bat_run.cycles,
        "identical": identical,
    }


def run_functional() -> dict:
    """SpMV full-grid trace: batched interpreter vs per-warp oracle."""
    matrix = random_blocked(
        block_rows=FUNCTIONAL_BLOCK_ROWS, slots=FUNCTIONAL_SLOTS, seed=5
    )
    kernel = spmv.build_kernel_for(spmv.prepare_problem(matrix, "ell"))
    return differential_gate(
        kernel, lambda: spmv.prepare_problem(matrix, "ell")
    )


def run_barrier() -> dict:
    """Matmul + CR full grids: grid-batched barriers vs the oracle."""
    from repro.apps.tridiag import (
        build_cr_kernel,
        prepare_problem as cr_problem,
    )

    workloads = {
        "matmul": (
            build_matmul_kernel(BARRIER_MATMUL_N, BARRIER_MATMUL_TILE),
            lambda: prepare_problem(BARRIER_MATMUL_N, BARRIER_MATMUL_TILE),
        ),
        "cyclic_reduction": (
            build_cr_kernel(BARRIER_CR_N),
            lambda: cr_problem(BARRIER_CR_N, BARRIER_CR_SYSTEMS),
        ),
    }
    return {
        name: differential_gate(kernel, fresh)
        for name, (kernel, fresh) in workloads.items()
    }


def run_symbolic() -> dict:
    """Zoo-wide synthesis audit plus the closed-form speedup gate."""
    from repro.analysis.report import BUILTIN_KERNELS, analysis_case
    from repro.apps.tridiag import (
        build_cr_kernel,
        prepare_problem as cr_problem,
    )

    # trace_mode="both" raises AnalysisError unless every synthesized
    # trace is pickle-byte-identical to its interpreted twin, so just
    # completing the sweep is the bit-identity gate.
    zoo = {}
    for name in BUILTIN_KERNELS:
        case = analysis_case(name)
        engine = SimulationEngine(
            case.kernel, gmem=case.gmem, trace_mode="both"
        )
        stats = engine.run(case.launch).engine_stats
        zoo[name] = {
            "block_classes": stats.block_classes,
            "synthesized_classes": stats.synthesized_classes,
            "interpreted_classes": stats.interpreted_classes,
        }

    kernel = build_cr_kernel(SYMBOLIC_CR_N)

    def symbolic_run(systems):
        problem = cr_problem(SYMBOLIC_CR_N, systems)
        launch = problem.launch()
        start = time.perf_counter()
        trace = SimulationEngine(kernel, gmem=problem.gmem).run(launch)
        return launch, trace, time.perf_counter() - start

    _, _, small_seconds = symbolic_run(SYMBOLIC_SYSTEMS_SMALL)
    launch, symbolic, symbolic_seconds = symbolic_run(SYMBOLIC_SYSTEMS_LARGE)

    serial_start = time.perf_counter()
    serial = FunctionalSimulator(
        kernel,
        gmem=cr_problem(SYMBOLIC_CR_N, SYMBOLIC_SYSTEMS_LARGE).gmem,
        batched=True,
    ).run(launch)
    serial_seconds = time.perf_counter() - serial_start

    identical = [s.canonical() for s in serial.stages] == [
        s.canonical() for s in symbolic.stages
    ]
    return {
        "zoo": zoo,
        "n": SYMBOLIC_CR_N,
        "blocks_small": SYMBOLIC_SYSTEMS_SMALL,
        "blocks_large": launch.num_blocks,
        "symbolic_seconds_small": small_seconds,
        "symbolic_seconds": symbolic_seconds,
        "serial_seconds": serial_seconds,
        "speedup": serial_seconds / symbolic_seconds,
        "grid_ratio": symbolic_seconds / small_seconds,
        "identical": identical,
        "engine": symbolic.engine_stats.summary(),
    }


def run_chaos() -> dict:
    """Fault-injection gate: degraded runs must equal the healthy one.

    Exercises the self-healing pool end to end -- worker crash with
    retry, hung-task watchdog with serial re-execution, trace-cache
    corruption with quarantine, and a timing-layer worker crash -- and
    demands that every degraded run is pickle-byte-identical (after
    normalizing the telemetry fields, which legitimately differ) to the
    healthy serial reference, with the faults visible in the health
    counters.
    """
    import tempfile
    from dataclasses import replace

    from repro import faults as faults_mod
    from repro.apps.matrices import qcd_like
    from repro.faults import FaultPlan
    from repro.pool import HealthRecord

    lattice = qcd_like(dims=CHAOS_DIMS)
    base = spmv.prepare_problem(lattice, "ell")
    kernel = spmv.build_kernel_for(base)
    launch = base.launch()

    def engine_run(workers, cache=None, plan=None, timeout=None):
        problem = spmv.prepare_problem(lattice, "ell")
        engine = SimulationEngine(
            kernel,
            gmem=problem.gmem,
            workers=workers,
            cache_dir=cache,
            faults=plan,
            task_timeout=timeout,
        )
        engine.simulator.grid_batch_blocks = 2
        return engine.run(problem.launch())

    def normalized(trace):
        return pickle.dumps(replace(trace, engine_stats=None))

    healthy = engine_run(0)
    reference = normalized(healthy)

    start = time.perf_counter()
    faulted = engine_run(
        2,
        plan=FaultPlan(
            crash_task=1, crash_attempts=1, hang_task=0, hang_seconds=60.0
        ),
        timeout=CHAOS_TASK_TIMEOUT,
    )
    pool_seconds = time.perf_counter() - start
    pool_health = faulted.engine_stats.health

    with tempfile.TemporaryDirectory() as cache_dir:
        engine_run(0, cache=cache_dir)  # populate the trace cache
        corrupted = engine_run(
            0, cache=cache_dir, plan=FaultPlan(corrupt_read=0)
        )
    cache_health = corrupted.engine_stats.health

    table = healthy.block_traces
    serial_run = HardwareGpu(min_parallel_events=0).measure(
        table, launch.num_blocks, 4
    )
    with faults_mod.injected(crash_task=1, crash_attempts=1):
        crashed_run = HardwareGpu(workers=2, min_parallel_events=0).measure(
            table, launch.num_blocks, 4
        )

    def run_bytes(run):
        return pickle.dumps(replace(run, health=HealthRecord()))

    return {
        "blocks": launch.num_blocks,
        "pool_seconds": pool_seconds,
        "pool_identical": normalized(faulted) == reference,
        "worker_crashes": pool_health.worker_crashes,
        "timeouts": pool_health.timeouts,
        "retries": pool_health.pool_retries,
        "serial_fallbacks": pool_health.serial_fallbacks,
        "cache_identical": normalized(corrupted) == reference,
        "cache_quarantines": cache_health.cache_quarantines,
        "timing_identical": run_bytes(crashed_run) == run_bytes(serial_run),
        "timing_worker_crashes": crashed_run.health.worker_crashes,
    }


def run_obs(obs_dir: Path | None = None) -> dict:
    """Observability gate: instrumentation must be invisible in results.

    Runs the smoke workload twice -- observability off, then on with a
    live recorder -- and demands that (1) the engine traces are
    pickle-byte-identical after normalizing ``engine_stats`` (whose
    wall-clock legitimately differs) and (2) the timing layer's
    MeasuredRuns are byte-identical outright.  The measured overhead of
    recording is reported alongside (informational: the <2 % budget in
    DESIGN.md is for *disabled* hooks, which every other gate in this
    file exercises).  ``obs_dir`` exports the recorded session for the
    CI artifact.
    """
    from dataclasses import replace

    from repro import obs

    kernel = build_matmul_kernel(N, TILE)
    launch = prepare_problem(N, TILE).launch()
    resident = 4

    def engine_trace():
        return SimulationEngine(
            kernel,
            gmem=prepare_problem(N, TILE).gmem,
            trace_mode="interpret",
        ).run(launch)

    off_start = time.perf_counter()
    baseline = engine_trace()
    off_seconds = time.perf_counter() - off_start
    run_off = HardwareGpu().measure(
        baseline.block_traces, launch.num_blocks, resident
    )

    recorder = obs.start()
    try:
        on_start = time.perf_counter()
        observed = engine_trace()
        on_seconds = time.perf_counter() - on_start
        run_on = HardwareGpu().measure(
            observed.block_traces, launch.num_blocks, resident
        )
    finally:
        obs.stop()
    if obs_dir is not None:
        obs.export_session(
            recorder,
            obs_dir,
            argv=["engine_smoke", "--obs", str(obs_dir)],
            command="engine_smoke",
            exit_status=0,
        )

    def normalized(trace):
        return pickle.dumps(replace(trace, engine_stats=None))

    trace_identical = normalized(observed) == normalized(baseline)
    run_identical = pickle.dumps(run_on) == pickle.dumps(run_off)
    return {
        "off_seconds": off_seconds,
        "on_seconds": on_seconds,
        "overhead": on_seconds / off_seconds - 1.0,
        "events": len(recorder.events),
        "spans": sum(1 for e in recorder.events if e["type"] == "span"),
        "trace_identical": trace_identical,
        "run_identical": run_identical,
        "identical": trace_identical and run_identical,
    }


def check_chaos(chaos: dict) -> int:
    """Evaluate the chaos gate; print the verdicts, return exit code."""
    print(
        f"chaos {chaos['blocks']} spmv blocks: pooled+faults "
        f"{chaos['pool_seconds']:.2f} s "
        f"({chaos['worker_crashes']} crashes, {chaos['timeouts']} timeouts, "
        f"{chaos['retries']} retries, "
        f"{chaos['serial_fallbacks']} serial fallbacks, "
        f"{chaos['cache_quarantines']} cache quarantines)"
    )
    if not chaos["pool_identical"]:
        print("FAIL: fault-injected engine run differs from healthy serial")
        return 1
    if not chaos["worker_crashes"] or not chaos["timeouts"]:
        print("FAIL: injected crash/hang not visible in health counters")
        return 1
    if not chaos["cache_identical"]:
        print("FAIL: corrupted-cache run differs from healthy serial")
        return 1
    if not chaos["cache_quarantines"]:
        print("FAIL: corrupted cache entry was not quarantined")
        return 1
    if not chaos["timing_identical"]:
        print("FAIL: fault-injected measurement differs from serial timing")
        return 1
    if not chaos["timing_worker_crashes"]:
        print("FAIL: timing-layer crash not visible in health counters")
        return 1
    return 0


def write_perf_json(path: Path, payload: dict) -> None:
    """Record the perf trajectory for the CI artifact (machine-readable)."""
    payload = dict(payload)
    payload["schema"] = "engine_smoke/1"
    payload["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--check", action="store_true")
    mode.add_argument("--update", action="store_true")
    mode.add_argument(
        "--chaos",
        action="store_true",
        help="run only the fault-injection gate (CI chaos step; any "
        "$REPRO_FAULTS plan stays active on top of the injected ones)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=Path("BENCH_engine_smoke.json"),
        help="where --check writes the machine-readable measurements",
    )
    parser.add_argument(
        "--obs",
        type=Path,
        default=None,
        help="export the obs gate's recorded session (events.jsonl, "
        "trace.json, metrics.json, manifest.json) to this directory "
        "(the CI obs-trace artifact)",
    )
    args = parser.parse_args(argv)

    if args.chaos:
        env_plan = os.environ.get("REPRO_FAULTS")
        if env_plan:
            print(f"chaos: $REPRO_FAULTS active: {env_plan}")
        if check_chaos(run_chaos()):
            return 1
        print("chaos gate OK")
        return 0

    result = run_once()
    timing = run_timing()
    functional = run_functional()
    barrier = run_barrier()
    symbolic = run_symbolic()
    chaos = run_chaos()
    obs_gate = run_obs(args.obs)
    if args.check:
        # Record the trajectory *before* evaluating any gate, so a
        # failing run still uploads the measurements that explain it.
        write_perf_json(
            args.json,
            {
                "engine": result,
                "timing": timing,
                "functional": functional,
                "barrier": barrier,
                "symbolic": symbolic,
                "chaos": chaos,
                "obs": obs_gate,
            },
        )
        print(f"perf trajectory written: {args.json}")

    print(
        f"matmul {result['n']} tile {result['tile']} "
        f"({result['blocks']} blocks): "
        f"serial {result['serial_seconds']:.2f} s, "
        f"engine {result['engine_seconds']:.2f} s "
        f"({result['speedup']:.1f}x)"
    )
    print(f"engine: {result['engine']}")

    if not result["identical"]:
        print("FAIL: engine aggregates differ from serial full-grid run")
        return 1
    if result["speedup"] < MIN_SPEEDUP:
        print(f"FAIL: speedup {result['speedup']:.1f}x < {MIN_SPEEDUP}x")
        return 1

    print(
        f"timing {timing['blocks']} heterogeneous blocks: "
        f"naive {timing['naive_seconds']:.2f} s, "
        f"dedup+pool {timing['fast_seconds']:.2f} s "
        f"({timing['speedup']:.1f}x, {timing['cluster_sims']} cluster sims, "
        f"{timing['signature_hits']} signature hits)"
    )
    if not timing["identical"]:
        print("FAIL: dedup/parallel timing cycles differ from naive replay")
        return 1
    if timing["speedup"] < TIMING_MIN_SPEEDUP:
        print(
            f"FAIL: timing speedup {timing['speedup']:.1f}x "
            f"< {TIMING_MIN_SPEEDUP}x"
        )
        return 1

    print(
        f"functional spmv full grid ({functional['blocks']} blocks, "
        f"{functional['instructions']} warp-instructions): "
        f"oracle {functional['oracle_seconds']:.2f} s "
        f"({functional['oracle_ips'] / 1e3:.0f}k instr/s), "
        f"batched {functional['batched_seconds']:.2f} s "
        f"({functional['batched_ips'] / 1e3:.0f}k instr/s), "
        f"{functional['speedup']:.1f}x"
    )
    if not functional["identical"]:
        print(
            "FAIL: batched traces or model predictions differ from the "
            "per-warp oracle"
        )
        return 1
    if functional["speedup"] < FUNCTIONAL_MIN_SPEEDUP:
        print(
            f"FAIL: functional speedup {functional['speedup']:.1f}x "
            f"< {FUNCTIONAL_MIN_SPEEDUP}x"
        )
        return 1

    for name, gate in barrier.items():
        print(
            f"barrier {name} full grid ({gate['blocks']} blocks, "
            f"{gate['instructions']} warp-instructions): "
            f"oracle {gate['oracle_seconds']:.2f} s "
            f"({gate['oracle_ips'] / 1e3:.0f}k instr/s), "
            f"grid-batched {gate['batched_seconds']:.2f} s "
            f"({gate['batched_ips'] / 1e3:.0f}k instr/s), "
            f"{gate['speedup']:.1f}x"
        )
        if not gate["identical"]:
            print(
                f"FAIL: {name} grid-batched traces or predictions differ "
                "from the per-warp oracle"
            )
            return 1
        if gate["speedup"] < BARRIER_MIN_SPEEDUP:
            print(
                f"FAIL: {name} barrier speedup {gate['speedup']:.1f}x "
                f"< {BARRIER_MIN_SPEEDUP}x"
            )
            return 1

    synthesized_zoo = [
        name
        for name, counts in symbolic["zoo"].items()
        if counts["synthesized_classes"] == counts["block_classes"] >= 1
    ]
    print(
        f"symbolic zoo audit (trace_mode=both): "
        f"{len(synthesized_zoo)}/{len(symbolic['zoo'])} kernels fully "
        f"synthesized; spmv interpreted "
        f"{symbolic['zoo']['spmv']['interpreted_classes']} classes"
    )
    print(
        f"symbolic cyclic-reduction n={symbolic['n']}: "
        f"serial {symbolic['serial_seconds']:.2f} s "
        f"({symbolic['blocks_large']} blocks), "
        f"symbolic {symbolic['symbolic_seconds']:.2f} s "
        f"({symbolic['speedup']:.1f}x); "
        f"{symbolic['blocks_small']} -> {symbolic['blocks_large']} blocks "
        f"grid ratio {symbolic['grid_ratio']:.2f}x"
    )
    print(f"symbolic engine: {symbolic['engine']}")
    for name, counts in symbolic["zoo"].items():
        affine = name != "spmv"
        synthesized = counts["synthesized_classes"] == counts["block_classes"]
        if affine and not (synthesized and counts["block_classes"] >= 1):
            print(f"FAIL: affine kernel {name} not fully synthesized: {counts}")
            return 1
        if not affine and counts["synthesized_classes"] != 0:
            print(f"FAIL: data-dependent {name} claims synthesis: {counts}")
            return 1
    if not symbolic["identical"]:
        print(
            "FAIL: symbolic engine aggregates differ from the serial "
            "full-grid interpreter"
        )
        return 1
    if symbolic["speedup"] < SYMBOLIC_MIN_SPEEDUP:
        print(
            f"FAIL: symbolic speedup {symbolic['speedup']:.1f}x "
            f"< {SYMBOLIC_MIN_SPEEDUP}x"
        )
        return 1
    if symbolic["grid_ratio"] > SYMBOLIC_MAX_GRID_RATIO:
        print(
            f"FAIL: symbolic wall-clock grew {symbolic['grid_ratio']:.2f}x "
            f"over a {symbolic['blocks_large'] // symbolic['blocks_small']}x "
            f"grid (limit {SYMBOLIC_MAX_GRID_RATIO}x); per-block synthesis "
            "cost is no longer grid-independent"
        )
        return 1

    if check_chaos(chaos):
        return 1

    print(
        f"obs: recording off {obs_gate['off_seconds']:.2f} s, "
        f"on {obs_gate['on_seconds']:.2f} s "
        f"({obs_gate['overhead'] * 100:+.1f}%, {obs_gate['spans']} spans, "
        f"{obs_gate['events']} events)"
        + (f"; session exported to {args.obs}" if args.obs else "")
    )
    if not obs_gate["trace_identical"]:
        print("FAIL: engine trace differs with observability recording on")
        return 1
    if not obs_gate["run_identical"]:
        print("FAIL: measured run differs with observability recording on")
        return 1

    if args.update:
        # Record the measurement with generous headroom so the absolute
        # gate keyed to this baseline tolerates slower (shared CI)
        # machines; the relative MIN_SPEEDUP gate above is what catches
        # genuine engine slowdowns.
        padded = round(max(result["engine_seconds"] * 1.5, 1.0), 2)
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    "n": result["n"],
                    "tile": result["tile"],
                    "engine_seconds": padded,
                    "note": (
                        f"measured {result['engine_seconds']:.2f} s; "
                        "recorded generously to absorb machine variance"
                    ),
                },
                indent=2,
            )
        )
        print(f"baseline updated: {BASELINE_PATH}")
        return 0

    baseline = json.loads(BASELINE_PATH.read_text())
    limit = baseline["engine_seconds"] * MAX_REGRESSION
    if result["engine_seconds"] > limit:
        print(
            f"FAIL: engine wall-clock {result['engine_seconds']:.2f} s "
            f"exceeds {MAX_REGRESSION}x recorded baseline "
            f"({baseline['engine_seconds']:.2f} s)"
        )
        return 1
    print("engine smoke benchmark OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
