"""Small-grid engine smoke benchmark (CI regression gate).

Runs one matmul grid through the serial simulator and through the
deduplicating engine, then checks three things:

1. the engine's aggregate statistics are bit-identical to the serial
   full-grid run (correctness);
2. the engine is at least ``MIN_SPEEDUP``x faster (the whole point);
3. the engine's absolute wall-clock has not regressed more than 2x
   against the recorded baseline in ``engine_smoke_baseline.json``.

A second gate covers the *timing* layer: a Fig. 4-scale heterogeneous
grid (1021 tail-guarded blocks, three block classes) is measured through
the naive per-cluster replay, the signature-deduplicating serial path,
and the parallel path.  All three must agree bit-identically on cycles,
and dedup + pool must be at least ``TIMING_MIN_SPEEDUP``x faster than
the naive replay.

A third gate covers the *functional interpreter*: the SpMV full grid
(data-dependent, so the engine cannot deduplicate -- the pipeline's
worst case) is traced through the per-warp reference oracle and through
the batched interpreter (grid batching included).  Per-block traces
must be bit-identical, the end-to-end hardware-model prediction must be
bit-identical, and the batched path must be at least
``FUNCTIONAL_MIN_SPEEDUP``x faster; both paths report their
instructions/second.

Usage::

    PYTHONPATH=src python benchmarks/engine_smoke.py --check
    PYTHONPATH=src python benchmarks/engine_smoke.py --update   # rebaseline
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import sys
import time
from pathlib import Path

from repro.apps import spmv
from repro.apps.matmul import build_matmul_kernel, prepare_problem
from repro.apps.matrices import random_blocked
from repro.hw import HardwareGpu
from repro.isa import Imm, KernelBuilder
from repro.sim import GlobalMemory, LaunchConfig
from repro.sim.engine import SimulationEngine
from repro.sim.functional import FunctionalSimulator

BASELINE_PATH = Path(__file__).parent / "engine_smoke_baseline.json"

#: Smoke configuration: 64 blocks, each with real shared-memory traffic.
N, TILE = 256, 16

#: Acceptance floor for dedup vs serial full-grid simulation.
MIN_SPEEDUP = 5.0

#: Wall-clock regression gate vs the recorded baseline.
MAX_REGRESSION = 2.0

#: Timing-layer grid: Fig. 4 scale (1024-block ballpark), sized so the
#: first and last blocks land in one cluster and the other nine clusters
#: share a single queue signature (strong dedup even on one core).
TIMING_BLOCKS = 1021
TIMING_THREADS = 64
TIMING_INNER = 48

#: Acceptance floor for dedup+pool vs naive per-cluster timing replay.
TIMING_MIN_SPEEDUP = 4.0

#: Functional-gate workload: a data-dependent SpMV grid (96 blocks of
#: 2 warps with the pipeline's launch: granularities (32, 16, 4) and
#: recorded segments), traced in full.
FUNCTIONAL_BLOCK_ROWS = 2048
FUNCTIONAL_SLOTS = 6

#: Acceptance floor for the batched interpreter vs the per-warp oracle
#: on the SpMV full-grid trace.
FUNCTIONAL_MIN_SPEEDUP = 3.0


def run_once() -> dict:
    kernel = build_matmul_kernel(N, TILE)
    launch = prepare_problem(N, TILE).launch()

    serial_start = time.perf_counter()
    serial = FunctionalSimulator(
        kernel, gmem=prepare_problem(N, TILE).gmem
    ).run(launch)
    serial_seconds = time.perf_counter() - serial_start

    engine_start = time.perf_counter()
    engine = SimulationEngine(kernel, gmem=prepare_problem(N, TILE).gmem)
    fast = engine.run(launch)
    engine_seconds = time.perf_counter() - engine_start

    identical = [s.canonical() for s in serial.stages] == [
        s.canonical() for s in fast.stages
    ]
    return {
        "n": N,
        "tile": TILE,
        "blocks": launch.num_blocks,
        "serial_seconds": serial_seconds,
        "engine_seconds": engine_seconds,
        "speedup": serial_seconds / engine_seconds,
        "identical": identical,
        "engine": fast.engine_stats.summary(),
    }


def build_timing_workload():
    """A Fig. 4-scale heterogeneous grid: tail-guarded streaming kernel."""
    n = TIMING_BLOCKS * TIMING_THREADS - 37  # last block partially active
    gmem = GlobalMemory()
    buf = gmem.alloc(n + TIMING_THREADS, "buf")
    b = KernelBuilder("smoke_stream", params=("buf", "n"))
    gid = b.reg()
    b.imad(gid, b.ctaid_x, b.ntid, b.tid)
    guard = b.pred()
    b.isetp(guard, "lt", gid, b.param("n"))
    with b.if_then(guard):
        addr = b.reg()
        b.imad(addr, gid, Imm(4), b.param("buf"))
        acc = b.reg()
        b.mov(acc, Imm(0.0))
        v = b.reg()
        with b.counted_loop(TIMING_INNER):
            b.ldg(v, addr)
            b.fmad(acc, v, v, acc)
            b.fmad(acc, v, acc, acc)
        b.stg(addr, acc)
    b.exit()
    launch = LaunchConfig(
        grid=(TIMING_BLOCKS, 1),
        block_threads=TIMING_THREADS,
        params={"buf": buf, "n": n},
    )
    return b.build(), gmem, launch


def run_timing() -> dict:
    """Time the heterogeneous grid through naive / dedup / parallel."""
    kernel, gmem, launch = build_timing_workload()
    trace = SimulationEngine(kernel, gmem=gmem).run(launch)
    table = trace.block_traces
    resident = 8

    naive_start = time.perf_counter()
    naive = HardwareGpu().measure(
        table,
        launch.num_blocks,
        resident,
        wave_extrapolation=False,
        dedup=False,
    )
    naive_seconds = time.perf_counter() - naive_start

    serial = HardwareGpu().measure(table, launch.num_blocks, resident)

    fast_gpu = HardwareGpu(workers=min(4, os.cpu_count() or 1))
    fast_start = time.perf_counter()
    fast = fast_gpu.measure(table, launch.num_blocks, resident)
    fast_seconds = time.perf_counter() - fast_start

    # The nine interior clusters share exactly equal queues here, so the
    # deduplicated paths must match the naive replay bit for bit (and
    # the parallel path must match serial dedup on every field).
    identical = (
        fast == serial
        and fast.cycles == naive.cycles
        and fast.cluster_cycles == naive.cluster_cycles
    )
    return {
        "blocks": launch.num_blocks,
        "naive_seconds": naive_seconds,
        "fast_seconds": fast_seconds,
        "speedup": naive_seconds / fast_seconds,
        "identical": identical,
        "cluster_sims": fast.cluster_sims,
        "signature_hits": fast.signature_hits,
    }


def run_functional() -> dict:
    """SpMV full-grid trace: batched interpreter vs per-warp oracle."""
    matrix = random_blocked(
        block_rows=FUNCTIONAL_BLOCK_ROWS, slots=FUNCTIONAL_SLOTS, seed=5
    )

    def fresh():
        problem = spmv.prepare_problem(matrix, "ell")
        return problem, spmv.build_kernel_for(problem)

    problem, kernel = fresh()
    launch = problem.launch()
    blocks = launch.all_blocks()

    oracle = FunctionalSimulator(kernel, gmem=fresh()[0].gmem, batched=False)
    oracle_start = time.perf_counter()
    reference = [oracle.run_block(launch, block) for block in blocks]
    oracle_seconds = time.perf_counter() - oracle_start

    batched_sim = FunctionalSimulator(kernel, gmem=fresh()[0].gmem, batched=True)
    batched_start = time.perf_counter()
    batched = batched_sim.run_blocks(launch, blocks)
    batched_seconds = time.perf_counter() - batched_start

    identical = all(
        a == b and pickle.dumps(a) == pickle.dumps(b)
        for a, b in zip(reference, batched)
    )

    # End-to-end prediction bit-identity: the timing layer must see the
    # same measurement from either trace table.
    resident = 4
    ref_run = HardwareGpu().measure(reference, launch.num_blocks, resident)
    bat_run = HardwareGpu().measure(batched, launch.num_blocks, resident)
    identical = identical and ref_run == bat_run

    instructions = sum(
        stage.total_instructions for t in reference for stage in t.stages
    )
    return {
        "blocks": len(blocks),
        "instructions": instructions,
        "oracle_seconds": oracle_seconds,
        "batched_seconds": batched_seconds,
        "oracle_ips": instructions / oracle_seconds,
        "batched_ips": instructions / batched_seconds,
        "speedup": oracle_seconds / batched_seconds,
        "identical": identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--check", action="store_true")
    mode.add_argument("--update", action="store_true")
    args = parser.parse_args(argv)

    result = run_once()
    print(
        f"matmul {result['n']} tile {result['tile']} "
        f"({result['blocks']} blocks): "
        f"serial {result['serial_seconds']:.2f} s, "
        f"engine {result['engine_seconds']:.2f} s "
        f"({result['speedup']:.1f}x)"
    )
    print(f"engine: {result['engine']}")

    if not result["identical"]:
        print("FAIL: engine aggregates differ from serial full-grid run")
        return 1
    if result["speedup"] < MIN_SPEEDUP:
        print(f"FAIL: speedup {result['speedup']:.1f}x < {MIN_SPEEDUP}x")
        return 1

    timing = run_timing()
    print(
        f"timing {timing['blocks']} heterogeneous blocks: "
        f"naive {timing['naive_seconds']:.2f} s, "
        f"dedup+pool {timing['fast_seconds']:.2f} s "
        f"({timing['speedup']:.1f}x, {timing['cluster_sims']} cluster sims, "
        f"{timing['signature_hits']} signature hits)"
    )
    if not timing["identical"]:
        print("FAIL: dedup/parallel timing cycles differ from naive replay")
        return 1
    if timing["speedup"] < TIMING_MIN_SPEEDUP:
        print(
            f"FAIL: timing speedup {timing['speedup']:.1f}x "
            f"< {TIMING_MIN_SPEEDUP}x"
        )
        return 1

    functional = run_functional()
    print(
        f"functional spmv full grid ({functional['blocks']} blocks, "
        f"{functional['instructions']} warp-instructions): "
        f"oracle {functional['oracle_seconds']:.2f} s "
        f"({functional['oracle_ips'] / 1e3:.0f}k instr/s), "
        f"batched {functional['batched_seconds']:.2f} s "
        f"({functional['batched_ips'] / 1e3:.0f}k instr/s), "
        f"{functional['speedup']:.1f}x"
    )
    if not functional["identical"]:
        print(
            "FAIL: batched traces or model predictions differ from the "
            "per-warp oracle"
        )
        return 1
    if functional["speedup"] < FUNCTIONAL_MIN_SPEEDUP:
        print(
            f"FAIL: functional speedup {functional['speedup']:.1f}x "
            f"< {FUNCTIONAL_MIN_SPEEDUP}x"
        )
        return 1

    if args.update:
        # Record the measurement with generous headroom so the absolute
        # gate keyed to this baseline tolerates slower (shared CI)
        # machines; the relative MIN_SPEEDUP gate above is what catches
        # genuine engine slowdowns.
        padded = round(max(result["engine_seconds"] * 1.5, 1.0), 2)
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    "n": result["n"],
                    "tile": result["tile"],
                    "engine_seconds": padded,
                    "note": (
                        f"measured {result['engine_seconds']:.2f} s; "
                        "recorded generously to absorb machine variance"
                    ),
                },
                indent=2,
            )
        )
        print(f"baseline updated: {BASELINE_PATH}")
        return 0

    baseline = json.loads(BASELINE_PATH.read_text())
    limit = baseline["engine_seconds"] * MAX_REGRESSION
    if result["engine_seconds"] > limit:
        print(
            f"FAIL: engine wall-clock {result['engine_seconds']:.2f} s "
            f"exceeds {MAX_REGRESSION}x recorded baseline "
            f"({baseline['engine_seconds']:.2f} s)"
        )
        return 1
    print("engine smoke benchmark OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
