"""Benchmark-harness infrastructure.

Every ``bench_*`` module regenerates one of the paper's tables or
figures (see DESIGN.md's experiment index), prints the same rows/series
the paper reports, and records them under ``benchmarks/results/`` so
EXPERIMENTS.md can quote concrete numbers.

Calibration is expensive (~40 s), so it is performed once and cached to
``benchmarks/results/calibration.json`` across benchmark sessions.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.hw import HardwareGpu
from repro.micro.cache import load_or_calibrate
from repro.model import PerformanceModel

RESULTS_DIR = Path(__file__).parent / "results"

#: Full warp grid for publication-quality curves.
BENCH_WARP_COUNTS = (
    1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16, 20, 24, 28, 32,
)


def pytest_addoption(parser):
    try:
        parser.addoption(
            "--sample",
            action="store_true",
            default=False,
            help="use the pre-engine 12-block representative sampling for "
            "the SpMV figures instead of exact full-grid traces",
        )
    except ValueError:
        # Already registered (conftest loaded twice via different paths).
        pass


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def engine_workers() -> int:
    """Pool width shared by the engine and the timing simulator."""
    return max(1, min(8, os.cpu_count() or 1))


@pytest.fixture(scope="session")
def spmv_sample_blocks(request) -> int | None:
    """SpMV trace mode: exact full grids by default, 12-block
    representative sampling with ``--sample`` (the pre-engine default,
    kept as an opt-in for quick comparisons)."""
    try:
        sampled = request.config.getoption("--sample")
    except ValueError:
        sampled = False
    return 12 if sampled else None


@pytest.fixture(scope="session")
def gpu(results_dir, engine_workers) -> HardwareGpu:
    # Measured-run memoization sits next to the session trace cache, so
    # re-running a figure replays its timing measurements instantly.
    return HardwareGpu(
        workers=engine_workers, cache_dir=str(results_dir / "measured")
    )


@pytest.fixture(scope="session")
def tables(gpu, results_dir):
    # Spec-keyed: editing the modelled architecture invalidates the
    # cached tables instead of silently reusing stale curves.
    return load_or_calibrate(
        gpu,
        path=results_dir / "calibration.json",
        warp_counts=BENCH_WARP_COUNTS,
        iterations=60,
    )


@pytest.fixture(scope="session")
def model(tables) -> PerformanceModel:
    return PerformanceModel(tables)


@pytest.fixture(scope="session")
def trace_cache(results_dir) -> str:
    """On-disk KernelTrace memo cache shared across benchmark sessions."""
    return str(results_dir / "traces")


class Reporter:
    """Collects table rows, prints them, and writes them to disk."""

    def __init__(self, name: str, directory: Path) -> None:
        self.name = name
        self.path = directory / f"{name}.txt"
        self.lines: list[str] = []

    def line(self, text: str = "") -> None:
        self.lines.append(text)

    def table(self, headers: list[str], rows: list[list]) -> None:
        widths = [
            max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
            for i, h in enumerate(headers)
        ]
        self.line(
            "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
        )
        self.line("  ".join("-" * w for w in widths))
        for row in rows:
            self.line(
                "  ".join(str(c).ljust(w) for c, w in zip(row, widths))
            )

    def flush(self) -> str:
        text = "\n".join([f"== {self.name} ==", *self.lines, ""])
        self.path.write_text(text)
        print("\n" + text)
        return text


@pytest.fixture()
def reporter(request, results_dir):
    rep = Reporter(request.node.name.replace("bench_", ""), results_dir)
    yield rep
    rep.flush()
