"""Table 2: matrix-multiply occupancy per sub-matrix size."""

from repro.apps.matmul import build_matmul_kernel
from repro.arch import GTX285, KernelResources, compute_occupancy

#: The paper's published (register, smem) pairs for reference columns.
PAPER_ROWS = {8: (16, 348), 16: (30, 1088), 32: (58, 4284)}


def bench_table2(benchmark, reporter):
    def generate():
        rows = []
        for tile in (8, 16, 32):
            kernel = build_matmul_kernel(1024, tile)
            ours = compute_occupancy(
                GTX285,
                KernelResources(
                    64, kernel.num_registers, kernel.shared_memory_bytes
                ),
            )
            paper_regs, paper_smem = PAPER_ROWS[tile]
            paper = compute_occupancy(
                GTX285, KernelResources(64, paper_regs, paper_smem)
            )
            rows.append(
                [
                    f"{tile}x{tile}",
                    kernel.num_registers,
                    kernel.shared_memory_bytes,
                    ours.blocks_by_registers,
                    ours.blocks_by_shared_memory,
                    ours.blocks_per_sm,
                    ours.warps_per_sm,
                    paper.blocks_per_sm,
                ]
            )
        return rows

    rows = benchmark.pedantic(generate, rounds=1, iterations=1)
    reporter.line("Our kernels vs paper Table 2 (paper blocks: 8 / 8 / 3)")
    reporter.table(
        [
            "sub-matrix",
            "regs",
            "smem B",
            "blk(reg)",
            "blk(smem)",
            "blocks",
            "warps",
            "paper blocks",
        ],
        rows,
    )
    # Final occupancy matches the paper for every tile size.
    assert [r[5] for r in rows] == [8, 8, 3]
    assert [r[6] for r in rows] == [16, 16, 6]
    assert [r[7] for r in rows] == [8, 8, 3]
    # Our register allocation reproduces NVCC's 30/58 for 16x16/32x32.
    assert rows[1][1] == 30 and rows[2][1] == 58
