"""Table 1: instruction types, functional units, peak throughputs."""

from repro.arch import GTX285
from repro.isa import TABLE1_EXAMPLES
from repro.sim.trace import TYPE_NAMES


def bench_table1(benchmark, tables, reporter):
    def generate():
        rows = []
        for name in TYPE_NAMES:
            peak = GTX285.peak_instruction_throughput(name) / 1e9
            measured = tables.instruction.saturated(name)
            rows.append(
                [
                    f"Type {name}",
                    GTX285.units_for_type(name),
                    ", ".join(TABLE1_EXAMPLES[name]),
                    f"{peak:.2f}",
                    f"{measured:.2f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(generate, rounds=1, iterations=1)
    reporter.line("Paper Table 1 + measured saturated throughput")
    reporter.table(
        ["type", "functional units", "examples", "peak GI/s", "measured GI/s"],
        rows,
    )
    # The paper's Table 1 unit counts must hold exactly.
    units = [r[1] for r in rows]
    assert units == [10, 8, 4, 1]
    # MAD peak is the quoted 11.1 GI/s.
    assert abs(float(rows[1][3]) - 11.1) < 0.05
