"""Fig. 3: global bandwidth vs blocks, block size, transactions/thread."""

from repro.arch import GTX285
from repro.micro import FIG3_CONFIGS, run_synthetic

#: Block counts along the paper's x axis (1..60, denser at the front
#: and around the cluster-multiple sawtooth).
BLOCK_COUNTS = tuple(range(1, 21)) + tuple(range(21, 61, 3)) + (
    29, 30, 31, 39, 40, 41, 49, 50, 51, 59, 60,
)


def bench_fig3(benchmark, gpu, reporter):
    counts = tuple(sorted(set(BLOCK_COUNTS)))

    def generate():
        series = {}
        for threads, loads in FIG3_CONFIGS:
            series[(threads, loads)] = [
                run_synthetic(b, threads, loads, gpu).bandwidth / 1e9
                for b in counts
            ]
        return series

    series = benchmark.pedantic(generate, rounds=1, iterations=1)

    headers = ["blocks"] + [f"{t}T,{m}M" for t, m in FIG3_CONFIGS]
    rows = [
        [b] + [f"{series[(t, m)][i]:.1f}" for t, m in FIG3_CONFIGS]
        for i, b in enumerate(counts)
    ]
    reporter.line(
        "Global memory bandwidth (GB/s) vs number of blocks "
        "(paper Fig. 3; peak 158.98, paper measured ~127)"
    )
    reporter.table(headers, rows)

    main = series[(256, 256)]
    peak_measured = max(max(s) for s in series.values())
    reporter.line()
    reporter.line(f"saturated bandwidth: {peak_measured:.1f} GB/s")

    # --- paper shape assertions -------------------------------------
    by_blocks = dict(zip(counts, main))
    # sawtooth: a multiple of 10 beats its successor near saturation
    assert by_blocks[30] > by_blocks[31]
    assert by_blocks[40] > by_blocks[41]
    # the dip shrinks as block count grows ("fluctuation becomes smaller")
    dip30 = (by_blocks[30] - by_blocks[31]) / by_blocks[30]
    dip50 = (by_blocks[50] - by_blocks[51]) / by_blocks[50]
    assert dip50 < dip30
    # measured peak below theoretical (DRAM efficiency)
    assert peak_measured < GTX285.peak_global_bandwidth / 1e9
    # low-parallelism configs stay latency-bound ("almost linear")
    light = series[(512, 2)]
    assert max(light) < 0.85 * peak_measured
    assert light[counts.index(20)] > 1.5 * light[counts.index(10)]
    # more transactions saturate earlier: 256M beats 2M at 10 blocks
    assert series[(256, 256)][counts.index(10)] > series[(256, 2)][
        counts.index(10)
    ]
