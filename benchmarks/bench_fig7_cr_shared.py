"""Fig. 7: sustained shared bandwidth and transactions per CR step."""

import pytest

from repro.apps.tridiag import forward_stage_count, run_cr

#: Paper Fig. 7(a) values (GB/s) for reference.
PAPER_BANDWIDTH = {"step 1": 1029, "step 2": 723, "step 3": 470, "step 4+": 330}


@pytest.fixture(scope="module")
def cr_run(model, gpu, trace_cache):
    return run_cr(
        512, 512, padded=False, model=model, gpu=gpu, measure=False,
        trace_cache=trace_cache,
    )


def bench_fig7a_bandwidth(benchmark, cr_run, tables, reporter):
    def generate():
        rows = []
        for stage in cr_run.report.stages[1 : forward_stage_count(512)]:
            bw = tables.shared.at(stage.active_warps) / 1e9
            rows.append([f"step {stage.index}", stage.active_warps, f"{bw:.0f}"])
        return rows

    rows = benchmark.pedantic(generate, rounds=1, iterations=1)
    reporter.line(
        "Fig. 7(a): sustained shared bandwidth per step "
        "(paper: 1029 / 723 / 470 / 330 GB/s, avg 397)"
    )
    reporter.table(["step", "warps", "GB/s"], rows)

    values = [float(r[2]) for r in rows[:4]]
    # Bandwidth declines monotonically as warps retire.
    assert values[0] > values[1] > values[2] > values[3]
    # Step 1 runs near-saturated (paper: 1029/1165 = 88%).
    assert values[0] / (tables.shared.saturated / 1e9) > 0.75


def bench_fig7b_transactions(benchmark, cr_run, reporter):
    def generate():
        rows = []
        for stage in cr_run.report.stages[1 : forward_stage_count(512)]:
            rows.append(
                [
                    f"step {stage.index}",
                    stage.inputs.shared_transactions,
                    stage.inputs.shared_transactions_ideal,
                    f"{stage.inputs.bank_conflict_factor:.1f}x",
                ]
            )
        return rows

    rows = benchmark.pedantic(generate, rounds=1, iterations=1)
    reporter.line(
        "Fig. 7(b): shared transactions per step, with vs without "
        "conflicts (half-warp units; paper used warp units: 139,264 "
        "constant vs 69,632 halving)"
    )
    reporter.table(["step", "with conflicts", "no conflicts", "factor"], rows)

    with_conflicts = [r[1] for r in rows]
    without = [r[2] for r in rows]
    # "the number of shared memory transactions remains constant"
    assert max(with_conflicts[:4]) / min(with_conflicts[:4]) < 1.02
    # conflict-free counts halve every step
    for a, b in zip(without[:4], without[1:5]):
        assert b == pytest.approx(a / 2, rel=0.02)
    # conflict factor doubles: 2x, 4x, 8x, ~16x
    factors = [float(r[3][:-1]) for r in rows[:4]]
    assert factors == pytest.approx([2.0, 4.0, 8.0, 15.9], abs=0.3)
