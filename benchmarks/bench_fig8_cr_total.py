"""Fig. 8: measured and modelled total time, CR vs CR-NBC."""

import pytest

from repro.apps.tridiag import run_cr

#: Paper values (ms): measured / simulated.
PAPER = {"CR": (0.757, 0.796), "CR-NBC": (0.468, 0.434)}


@pytest.fixture(scope="module")
def runs(model, gpu, trace_cache):
    return {
        padded: run_cr(
            512, 512, padded=padded, model=model, gpu=gpu,
            trace_cache=trace_cache,
        )
        for padded in (False, True)
    }


def bench_fig8(benchmark, runs, reporter):
    def generate():
        rows = []
        for padded, name in ((False, "CR"), (True, "CR-NBC")):
            run = runs[padded]
            rows.append(
                [
                    name,
                    f"{run.measured.milliseconds:.3f}",
                    f"{run.report.predicted_milliseconds:.3f}",
                    f"{run.model_error:.0%}",
                    run.report.bottleneck,
                    f"{PAPER[name][0]:.3f}/{PAPER[name][1]:.3f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(generate, rounds=1, iterations=1)
    reporter.line("Fig. 8: CR vs CR-NBC, 512 systems x 512 equations (ms)")
    reporter.table(
        ["solver", "measured", "model", "err", "bottleneck", "paper (m/s)"],
        rows,
    )
    cr, nbc = runs[False], runs[True]
    meas_speedup = cr.measured.seconds / nbc.measured.seconds
    pred_speedup = (
        cr.report.predicted_seconds / nbc.report.predicted_seconds
    )
    reporter.line()
    reporter.line(
        f"padding speedup: measured {meas_speedup:.2f}x, "
        f"model {pred_speedup:.2f}x (paper: 1.6x)"
    )

    # Paper narrative: CR dominated by shared memory, CR-NBC by
    # instruction execution; padding buys ~1.6x.
    assert cr.report.bottleneck == "shared"
    assert nbc.report.bottleneck == "instruction"
    assert 1.35 <= meas_speedup <= 1.9
    assert pred_speedup == pytest.approx(meas_speedup, rel=0.25)
