"""Fig. 4: dense matrix multiply -- counts (a) and time breakdown (b).

Runs the full 1024x1024 experiment for the paper's three sub-matrix
sizes.  Counts are warp-level half-warp transactions where applicable
(the paper's Fig. 4a counts warp-level transactions; ours are exactly
2x for global/shared, see EXPERIMENTS.md).
"""

import pytest

from repro.apps.matmul import gflops, run_matmul

N = 1024

#: Paper values for reference columns (x1e6 warp-level counts; ms).
PAPER_4A = {
    8: (47.02, 33.55, 34.43, 4.75),
    16: (41.71, 33.55, 34.28, 2.65),
    32: (38.81, 33.55, 34.17, 1.61),
}
PAPER_4B_MEASURED = {8: 6.0, 16: 5.4, 32: 5.6}


@pytest.fixture(scope="module")
def runs(model, gpu, trace_cache):
    return {
        tile: run_matmul(N, tile, model=model, gpu=gpu, trace_cache=trace_cache)
        for tile in (8, 16, 32)
    }


def bench_fig4a_counts(benchmark, runs, reporter):
    rows = benchmark.pedantic(
        lambda: [
            [
                f"{t}x{t}",
                f"{runs[t].trace.totals.total_instructions / 1e6:.2f}",
                f"{runs[t].trace.totals.mad_instructions / 1e6:.2f}",
                f"{runs[t].trace.totals.shared_transactions / 2e6:.2f}",
                f"{runs[t].trace.totals.global_transactions[32] / 2e6:.2f}",
                f"{PAPER_4A[t][0]:.2f}/{PAPER_4A[t][1]:.2f}/"
                f"{PAPER_4A[t][2]:.2f}/{PAPER_4A[t][3]:.2f}",
            ]
            for t in (8, 16, 32)
        ],
        rounds=1,
        iterations=1,
    )
    reporter.line("Fig. 4(a): dynamic counts, x1e6 warp-level")
    reporter.table(
        ["tile", "instr", "MAD", "shared", "global", "paper (I/M/S/G)"],
        rows,
    )

    totals = {t: runs[t].trace.totals for t in (8, 16, 32)}
    # MAD count = matrixSize^3 / warpSize for every tile size.
    for t in (8, 16, 32):
        assert totals[t].mad_instructions == pytest.approx(N**3 / 32, rel=0.001)
    # Total instructions decrease with larger tiles.
    assert (
        totals[8].total_instructions
        > totals[16].total_instructions
        > totals[32].total_instructions
    )
    # Global transactions drop by ~45% then ~40% (paper's reductions).
    g = {t: totals[t].global_transactions[32] for t in (8, 16, 32)}
    assert g[16] / g[8] == pytest.approx(0.55, abs=0.06)
    assert g[32] / g[16] == pytest.approx(0.60, abs=0.06)
    # Shared transactions roughly constant across tile sizes.
    s = [totals[t].shared_transactions for t in (8, 16, 32)]
    assert max(s) / min(s) < 1.05


def bench_fig4b_breakdown(benchmark, runs, reporter):
    def generate():
        rows = []
        for t in (8, 16, 32):
            r = runs[t].report
            rows.append(
                [
                    f"{t}x{t}",
                    f"{r.component_totals.instruction * 1e3:.2f}",
                    f"{r.component_totals.shared * 1e3:.2f}",
                    f"{r.component_totals.global_ * 1e3:.2f}",
                    r.bottleneck,
                    f"{runs[t].measured.milliseconds:.2f}",
                    f"{runs[t].model_error:.0%}",
                    f"{gflops(N, runs[t].measured.seconds):.0f}",
                    f"{PAPER_4B_MEASURED[t]:.1f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(generate, rounds=1, iterations=1)
    reporter.line("Fig. 4(b): model breakdown vs hardware measurement (ms)")
    reporter.table(
        [
            "tile",
            "instr",
            "shared",
            "global",
            "bottleneck",
            "measured",
            "err",
            "GFLOPS",
            "paper meas",
        ],
        rows,
    )

    # Paper narrative: 8x8 and 16x16 instruction-bound, 32x32 shared.
    assert runs[8].report.bottleneck == "instruction"
    assert runs[16].report.bottleneck == "instruction"
    assert runs[32].report.bottleneck == "shared"
    # 16x16 is the fastest measured configuration.
    measured = {t: runs[t].measured.seconds for t in (8, 16, 32)}
    assert measured[16] == min(measured.values())
    # Model error on the instruction-bound 16x16 within the paper band.
    assert runs[16].model_error < 0.20
    # The 32x32 case runs at 6 warps: shared time exceeds 16x16's.
    assert (
        runs[32].report.component_totals.shared
        > 1.2 * runs[16].report.component_totals.shared
    )
