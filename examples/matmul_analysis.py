"""Section 5.1 walkthrough: why the 16x16 sub-matrix wins dense MM.

Reproduces the paper's dense matrix multiply study at a laptop-friendly
size (n=512; run with --full for the paper's 1024): occupancy per tile
size (Table 2), dynamic counts (Fig. 4a), the model's component
breakdown versus hardware measurement (Fig. 4b), and the architectural
what-ifs of Section 5.1.

Run:  python examples/matmul_analysis.py [--full]
"""

import sys

from repro import HardwareGpu, PerformanceModel
from repro.apps.matmul import build_matmul_kernel, gflops, run_matmul
from repro.arch import GTX285, KernelResources, compute_occupancy
from repro.model import predict_with_max_blocks, predict_with_resources


def main() -> None:
    n = 1024 if "--full" in sys.argv else 512
    gpu = HardwareGpu()
    print("Calibrating ...")
    model = PerformanceModel()

    print(f"\n--- occupancy (paper Table 2), n={n} ---")
    print("tile     regs  smem(B)  blocks  warps  limiting")
    for tile in (8, 16, 32):
        kernel = build_matmul_kernel(n, tile)
        occ = compute_occupancy(
            GTX285,
            KernelResources(64, kernel.num_registers, kernel.shared_memory_bytes),
        )
        print(
            f"{tile:2d}x{tile:<4d} {kernel.num_registers:4d}  "
            f"{kernel.shared_memory_bytes:6d}  {occ.blocks_per_sm:6d}  "
            f"{occ.warps_per_sm:5d}  {', '.join(occ.limiters)}"
        )

    runs = {}
    print("\n--- counts and breakdown (paper Fig. 4) ---")
    for tile in (8, 16, 32):
        runs[tile] = run_matmul(n, tile, model=model, gpu=gpu)
        totals = runs[tile].trace.totals
        r = runs[tile].report
        print(
            f"{tile:2d}x{tile:<3d} instr {totals.total_instructions/1e6:6.2f}M "
            f"(MAD {totals.computational_density:4.0%}) | model ms: "
            f"I {r.component_totals.instruction*1e3:5.2f} "
            f"S {r.component_totals.shared*1e3:5.2f} "
            f"G {r.component_totals.global_*1e3:5.2f} "
            f"-> {r.bottleneck:<11s} | measured "
            f"{runs[tile].measured.milliseconds:5.2f} ms "
            f"({gflops(n, runs[tile].measured.seconds):4.0f} GFLOPS)"
        )

    best = min(runs, key=lambda t: runs[t].measured.seconds)
    print(f"\nfastest tile: {best}x{best} (paper: 16x16)")
    print(
        "the 32x32 tile drops to 6 warps/SM and its bottleneck shifts to"
        " shared memory -- the paper's central Fig. 4(b) observation."
    )

    print("\n--- architectural what-ifs (Section 5.1) ---")
    run16 = runs[16]
    inputs = model.extract(run16.trace, run16.launch, run16.resources)
    print(predict_with_max_blocks(model, inputs, run16.resources, 16).render())
    run32 = runs[32]
    inputs32 = model.extract(run32.trace, run32.launch, run32.resources)
    print(
        predict_with_resources(
            model, inputs32, run32.resources, register_scale=2, shared_scale=2
        ).render()
    )


if __name__ == "__main__":
    main()
