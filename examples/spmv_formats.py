"""Section 5.3 walkthrough: SpMV storage formats on a QCD-like matrix.

Shows how the transaction simulator attributes global-memory bytes to
each array (matrix entries, column indices, vector entries -- Fig. 11a),
how blocked storage and the paper's vector-interleaving optimization cut
the uncoalesced vector traffic, and what the texture cache adds
(Fig. 12).

Run:  python examples/spmv_formats.py [--full]
"""

import sys

from repro import HardwareGpu, PerformanceModel, qcd_like
from repro.apps.spmv import FORMATS, bytes_per_entry, gflops, run_spmv
from repro.model import predict_with_granularity

LABELS = {"ell": "ELL", "bell_im": "BELL+IM", "bell_imiv": "BELL+IMIV"}


def main() -> None:
    dims = (8, 8, 16, 16) if "--full" in sys.argv else (8, 8, 16, 8)
    matrix = qcd_like(dims=dims)
    print(
        f"QCD-like matrix: {matrix.n} x {matrix.n}, "
        f"{matrix.block_rows} block rows x {matrix.slots} 3x3 blocks, "
        f"nnz = {matrix.nnz:,}"
    )
    gpu = HardwareGpu()
    print("Calibrating ...")
    model = PerformanceModel()

    runs = {}
    print("\n--- formats (paper Figs. 11b, 12) ---")
    for fmt in FORMATS:
        runs[fmt] = run_spmv(matrix, fmt, model=model, gpu=gpu, sample_blocks=10)
        r = runs[fmt].report
        print(
            f"{LABELS[fmt]:<10s} model: I {r.component_totals.instruction*1e3:6.3f} "
            f"S {r.component_totals.shared*1e3:6.3f} "
            f"G {r.component_totals.global_*1e3:6.3f} ms -> {r.bottleneck:<7s}"
            f" | measured {runs[fmt].measured.milliseconds:6.3f} ms = "
            f"{gflops(matrix, runs[fmt].measured.seconds):5.1f} GFLOPS"
        )

    print("\n--- bytes per matrix entry (paper Fig. 11a) ---")
    print("format      gran  matrix  colidx  vector")
    for fmt in FORMATS:
        bpe = bytes_per_entry(runs[fmt], matrix)
        for gran in (32, 16, 4):
            print(
                f"{LABELS[fmt]:<10s} {gran:4d}  "
                f"{bpe['vals'].get(gran, 0):6.2f}  "
                f"{bpe['cols'].get(gran, 0):6.2f}  "
                f"{bpe['x'].get(gran, 0):6.2f}"
            )

    print("\n--- what-if: smaller memory transactions (Section 5.3) ---")
    ell = runs["ell"]
    inputs = model.extract(ell.trace, ell.launch, ell.resources)
    print(predict_with_granularity(model, inputs, 16).render())

    print("\n--- texture cache (paper Fig. 12's +Cache bars) ---")
    for fmt in FORMATS:
        cached = run_spmv(matrix, fmt, gpu=gpu, use_cache=True, sample_blocks=10)
        print(
            f"{LABELS[fmt]:<10s}+Cache  {gflops(matrix, cached.measured.seconds):5.1f} "
            f"GFLOPS (hit rate {cached.measured.cache_hit_rate:.0%}; "
            f"without: {gflops(matrix, runs[fmt].measured.seconds):5.1f})"
        )

    print(
        "\nvector interleaving (IMIV) wins even without the cache --"
        "\nthe paper's headline SpMV result."
    )


if __name__ == "__main__":
    main()
