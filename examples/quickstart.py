"""Quickstart: analyze your own kernel with the performance model.

Builds a small native kernel (SAXPY with a deliberately expensive
twist), runs it through the full workflow of the paper's Fig. 1 --
functional simulation, info extraction, per-component modelling -- and
prints the quantitative report: component times, the bottleneck, its
causes, and what would bind next.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    GTX285,
    FunctionalSimulator,
    GlobalMemory,
    HardwareGpu,
    KernelBuilder,
    LaunchConfig,
    PerformanceModel,
)
from repro.arch import KernelResources, compute_occupancy
from repro.isa import Imm


def build_saxpy(use_rcp: bool):
    """y = a*x + y, optionally dividing by x first (type III pressure)."""
    b = KernelBuilder("saxpy", params=("x", "y", "alpha", "n"))
    gid = b.reg()
    b.imad(gid, b.ctaid_x, b.ntid, b.tid)
    guard = b.pred()
    b.isetp(guard, "lt", gid, b.param("n"))
    with b.if_then(guard):
        off = b.reg()
        b.ishl(off, gid, Imm(2))
        ax = b.reg()
        ay = b.reg()
        b.iadd(ax, b.param("x"), off)
        b.ldg(ax, ax)
        b.iadd(ay, b.param("y"), off)
        addr_y = b.reg()
        b.mov(addr_y, ay)
        b.ldg(ay, ay)
        if use_rcp:
            b.rcp(ax, ax)  # an "expensive instruction" (paper type III)
        b.fmad(ay, ax, b.param("alpha"), ay)
        b.stg(addr_y, ay)
    b.exit()
    return b.build()


def main() -> None:
    print("Calibrating microbenchmarks on the hardware simulator ...")
    gpu = HardwareGpu()
    model = PerformanceModel()  # runs the Fig. 2/3 microbenchmarks once

    n = 1 << 16
    for use_rcp in (False, True):
        kernel = build_saxpy(use_rcp)
        gmem = GlobalMemory()
        x = np.linspace(1, 2, n)
        y = np.ones(n)
        base_x = gmem.alloc_array(x, "x")
        base_y = gmem.alloc_array(y, "y")
        launch = LaunchConfig(
            grid=(n // 256, 1),
            block_threads=256,
            params={"x": base_x, "y": base_y, "alpha": 3.0, "n": n},
        )

        simulator = FunctionalSimulator(kernel, gmem)
        trace = simulator.run(launch, blocks=[(0, 0)])  # representative
        resources = KernelResources(
            256, kernel.num_registers, kernel.shared_memory_bytes
        )
        occupancy = compute_occupancy(GTX285, resources)
        report = model.analyze(trace, launch, resources)
        measured = gpu.measure(
            trace.block_traces[0],
            num_blocks=launch.num_blocks,
            resident_per_sm=occupancy.blocks_per_sm,
        )

        title = "SAXPY with rcp" if use_rcp else "plain SAXPY"
        print(f"\n=== {title} ===")
        print(report.render())
        print(f"hardware measurement  : {measured.milliseconds:.4f} ms")
        print(f"model error           : {report.error_against(measured.seconds):.1%}")

    print(
        "\nBoth variants are global-memory bound (streaming kernels), but"
        "\nnote the type III pressure the rcp adds to the instruction"
        "\ncomponent -- exactly the cause list of the paper's Section 3."
    )


if __name__ == "__main__":
    main()
