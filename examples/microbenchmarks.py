"""Regenerate the paper's microbenchmark curves (Figs. 2 and 3) as text.

Run:  python examples/microbenchmarks.py
"""

from repro import GTX285, HardwareGpu
from repro.micro import (
    FIG3_CONFIGS,
    measure_instruction_throughput,
    measure_shared_bandwidth,
    run_synthetic,
)
from repro.sim.trace import TYPE_NAMES

WARPS = (1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 28, 32)


def spark(values, width: int = 40) -> str:
    """A one-line ASCII plot."""
    top = max(values)
    return "".join(
        " .:-=+*#%@"[min(9, int(10 * v / top))] if top else " " for v in values
    )


def main() -> None:
    gpu = HardwareGpu()

    print("=== Fig. 2 (left): instruction throughput vs warps/SM ===")
    table = measure_instruction_throughput(gpu, warp_counts=WARPS)
    header = "warps: " + " ".join(f"{w:5d}" for w in WARPS)
    print(header)
    for t in TYPE_NAMES:
        series = table.throughput[t]
        peak = GTX285.peak_instruction_throughput(t) / 1e9
        print(
            f"  {t:3s}: "
            + " ".join(f"{v:5.2f}" for v in series)
            + f"   (theoretical {peak:.2f} GI/s)"
        )
    for t in TYPE_NAMES:
        print(f"  {t:3s} |{spark(table.throughput[t])}|")

    print("\n=== Fig. 2 (right): shared-memory bandwidth vs warps/SM ===")
    shared = measure_shared_bandwidth(gpu, warp_counts=WARPS)
    print(header)
    print(
        "  GB/s: "
        + " ".join(f"{v / 1e9:5.0f}" for v in shared.bandwidth)
        + f"   (theoretical {GTX285.peak_shared_bandwidth / 1e9:.0f} GB/s)"
    )
    print(f"      |{spark(shared.bandwidth)}|")
    print(
        f"  note: saturates at ~{shared.saturation_warps()} warps -- later "
        "than the instruction pipeline (the paper's longer-memory-pipeline"
        " observation)"
    )

    print("\n=== Fig. 3: global bandwidth vs blocks (GB/s) ===")
    blocks = (1, 2, 4, 6, 8, 10, 15, 20, 25, 30, 31, 40, 41, 50, 60)
    print("blocks:    " + " ".join(f"{b:5d}" for b in blocks))
    for threads, loads in FIG3_CONFIGS:
        series = [
            run_synthetic(b, threads, loads, gpu).bandwidth / 1e9 for b in blocks
        ]
        print(f"{threads:3d}T,{loads:3d}M " + " ".join(f"{v:5.1f}" for v in series))
    print(
        "\nnote the sawtooth: 31 blocks is slower than 30 (10 memory"
        "\nclusters -> block counts should be a multiple of 10), and the"
        "\n2M configurations stay latency-bound (almost linear)."
    )


if __name__ == "__main__":
    main()
