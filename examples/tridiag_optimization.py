"""Section 5.2 walkthrough: model-guided optimization of cyclic reduction.

The paper's workflow in action:

1. run plain cyclic reduction (CR) and identify its bottleneck --
   shared memory, inflated by doubling bank conflicts (Figs. 5-7);
2. ask the model what removing the conflicts would buy *before*
   writing any code (the Fig. 6(b) prediction);
3. implement the padding (CR-NBC), verify the speedup and the
   bottleneck shift to the instruction pipeline (Fig. 8);
4. review the architectural suggestions the analysis motivates.

Run:  python examples/tridiag_optimization.py
"""

from repro import HardwareGpu, PerformanceModel
from repro.apps.tridiag import forward_stage_count, run_cr
from repro.model import (
    predict_with_early_resource_release,
    predict_without_bank_conflicts,
)


def main() -> None:
    n, systems = 512, 512
    gpu = HardwareGpu()
    print("Calibrating ...")
    model = PerformanceModel()

    print(f"\nSolving {systems} tridiagonal systems of {n} equations.")
    cr = run_cr(n, systems, padded=False, model=model, gpu=gpu)
    print("\n--- step 1: analyze plain CR ---")
    print(cr.report.render())
    print(f"hardware measurement: {cr.measured.milliseconds:.3f} ms")

    print("\nper-step view of the forward reduction (paper Fig. 6a):")
    for stage in cr.report.stages[: forward_stage_count(n)]:
        bar = "#" * max(1, round(stage.times.bottleneck_time * 2e6))
        print(
            f"  step {stage.index:2d} [{stage.active_warps} warps] "
            f"{stage.bottleneck:<11s} {bar}"
        )

    print("\n--- step 2: what would removing bank conflicts buy? ---")
    inputs = model.extract(cr.trace, cr.launch, cr.resources)
    prediction = predict_without_bank_conflicts(model, inputs)
    print(prediction.render())

    print("\n--- step 3: implement the padding (CR-NBC) and verify ---")
    nbc = run_cr(n, systems, padded=True, model=model, gpu=gpu)
    print(nbc.report.render())
    print(f"hardware measurement: {nbc.measured.milliseconds:.3f} ms")
    speedup = cr.measured.seconds / nbc.measured.seconds
    print(
        f"\nmeasured speedup {speedup:.2f}x "
        f"(model predicted {prediction.speedup:.2f}x; paper: 1.6x)"
    )
    print(
        f"bottleneck shifted {cr.report.bottleneck} -> {nbc.report.bottleneck}"
    )

    print("\n--- step 4: architectural suggestions (Section 5.2) ---")
    print(
        "prime-numbered banks would remove the conflicts in hardware:\n "
        f" {prediction.render()}"
    )
    early = predict_with_early_resource_release(model, inputs, 1)
    print(f"early resource release:\n  {early.render()}")


if __name__ == "__main__":
    main()
